"""Pluggable channel models: perfect, lossy, noisy, and combined.

The paper proves self-stabilization under perfect collision detection:
a vertex hears a beep iff at least one neighbor beeped.  The related
beeping-MIS line (Afek et al.'s "extremely harsh broadcast model",
Cornejo-Haeupler-Kuhn's beep-only MIS) targets channels that drop and
fabricate carrier-sense bits, which is exactly the stress regime
ROADMAP item 5 asks about.  This module supplies those channels as
small value objects behind a registry mirroring the engine/kernel
registries, applied vectorized by every engine between the hear-matvec
and the level update.

Semantics
---------
Perturbation is **receiver-side**: a channel model acts on the
aggregated carrier-sense bit each vertex computed (the output of
``kernel.hear``), not on individual transmissions.  Per (receiver,
round):

* :class:`PerfectChannel` — the paper's model; the identity.
* :class:`LossyChannel` — a heard beep is independently *dropped* with
  probability ``p_miss`` (the receiver senses silence).
* :class:`NoisyChannel` — a silent receiver independently senses a
  *spurious* beep with probability ``p_false``.
* :class:`UnreliableChannel` — the composition, misses applied before
  false positives (so a dropped beep can be replaced by a spurious
  one, exactly as chaining ``lossy`` then ``noisy`` would).

Channel noise perturbs only in-round communication.  The structural
predicates (``mis_mask`` / ``is_legal``) stay exact, so "stabilized"
still means "reached a true MIS configuration" — what degrades under
noise is *when* (and below recoverable thresholds, never *whether*)
that happens.

RNG discipline
--------------
Models never construct generators or seed trees — devtools rule
RPR105 enforces this.  They consume the engine-bound channel stream
passed into :meth:`BoundChannel.apply`; the engine derives that stream
once at construction (see ``docs/robustness.md`` for the seed-tree
layout).  Every non-perfect model draws ``rng.random(heard.shape)``
unconditionally — the stream layout is data-independent, which is what
keeps solo and batched replicas bit-identical under noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, Optional, Tuple, Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "CHANNEL_SPECS",
    "ChannelModel",
    "PerfectChannel",
    "LossyChannel",
    "NoisyChannel",
    "UnreliableChannel",
    "BoundChannel",
    "ChannelLike",
    "register_channel",
    "unregister_channel",
    "available_channels",
    "channel_from_spec",
    "resolve_channel",
]

#: Accepted ``--channel`` spec strings (parsed by :func:`channel_from_spec`).
CHANNEL_SPECS = (
    "perfect",
    "lossy:P_MISS",
    "noisy:P_FALSE",
    "unreliable:P_MISS,P_FALSE",
)


def _check_probability(value: float, what: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{what} must be in [0, 1], got {value}")
    return value


def _probability(text: str, what: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"{what} must be a float, got {text!r}") from None
    return _check_probability(value, what)


class ChannelModel:
    """Base class for channel specs (immutable value objects).

    Subclasses set :attr:`name` (the registry key), :attr:`needs_rng`
    (whether :meth:`BoundChannel.apply` consumes randomness — the
    engine only derives a channel stream when it does), and implement
    :meth:`_perturb`.  ``trivial`` marks the identity channel: engines
    combine it with the synchronous scheduler into the byte-identical
    fast path.
    """

    name: ClassVar[str] = ""
    needs_rng: ClassVar[bool] = True
    trivial: ClassVar[bool] = False

    def bind(self) -> "BoundChannel":
        """Attach per-engine counters to this (shared, immutable) spec."""
        return BoundChannel(self)

    def spec(self) -> str:
        """Round-trippable spec string (``channel_from_spec(m.spec()) == m``)."""
        raise NotImplementedError

    def _perturb(
        self,
        heard: npt.NDArray[np.bool_],
        rng: Optional[np.random.Generator],
        scratch: Optional["_PerturbScratch"],
    ) -> Tuple[int, int]:
        """Mutate ``heard`` in place; return ``(dropped, spurious)`` counts.

        ``scratch`` holds the bound channel's reusable draw/mask buffers
        (:class:`_PerturbScratch`); non-trivial models fill them in
        place instead of allocating per round.  The uniform draws still
        consume exactly ``heard.size`` values per draw, so the stream
        layout is unchanged from the historical allocating version.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"


@dataclass(frozen=True)
class PerfectChannel(ChannelModel):
    """The paper's channel: every hear bit arrives untouched."""

    name: ClassVar[str] = "perfect"
    needs_rng: ClassVar[bool] = False
    trivial: ClassVar[bool] = True

    def spec(self) -> str:
        return "perfect"

    def _perturb(
        self,
        heard: npt.NDArray[np.bool_],
        rng: Optional[np.random.Generator],
        scratch: Optional["_PerturbScratch"],
    ) -> Tuple[int, int]:
        # Identity: no mutation, and ``rng`` (which may be None — the
        # engine derives no channel stream for a perfect channel) is
        # never touched.  ``scratch`` stays None for trivial channels.
        return 0, 0


@dataclass(frozen=True)
class LossyChannel(ChannelModel):
    """Each heard beep is independently dropped with ``p_miss``."""

    p_miss: float
    name: ClassVar[str] = "lossy"

    def __post_init__(self) -> None:
        _check_probability(self.p_miss, "p_miss")

    def spec(self) -> str:
        return f"lossy:{self.p_miss:g}"

    def _perturb(
        self,
        heard: npt.NDArray[np.bool_],
        rng: Optional[np.random.Generator],
        scratch: Optional["_PerturbScratch"],
    ) -> Tuple[int, int]:
        assert rng is not None and scratch is not None
        draws, dropped = scratch.draws, scratch.mask
        rng.random(out=draws)
        np.less(draws, self.p_miss, out=dropped)
        dropped &= heard
        heard[dropped] = False
        return int(np.count_nonzero(dropped)), 0


@dataclass(frozen=True)
class NoisyChannel(ChannelModel):
    """Each silent receiver independently hears a spurious beep."""

    p_false: float
    name: ClassVar[str] = "noisy"

    def __post_init__(self) -> None:
        _check_probability(self.p_false, "p_false")

    def spec(self) -> str:
        return f"noisy:{self.p_false:g}"

    def _perturb(
        self,
        heard: npt.NDArray[np.bool_],
        rng: Optional[np.random.Generator],
        scratch: Optional["_PerturbScratch"],
    ) -> Tuple[int, int]:
        assert rng is not None and scratch is not None
        draws, spurious = scratch.draws, scratch.mask
        rng.random(out=draws)
        np.less(draws, self.p_false, out=spurious)
        np.logical_not(heard, out=scratch.mask2)
        spurious &= scratch.mask2
        heard[spurious] = True
        return 0, int(np.count_nonzero(spurious))


@dataclass(frozen=True)
class UnreliableChannel(ChannelModel):
    """Misses then false positives — ``lossy`` composed with ``noisy``.

    Two independent full-width uniform draws (``heard.size`` values
    each) per application, miss draw first; a position whose beep was
    just dropped can therefore be refilled by a spurious beep, exactly
    as chaining the two models would produce.
    """

    p_miss: float
    p_false: float
    name: ClassVar[str] = "unreliable"

    def __post_init__(self) -> None:
        _check_probability(self.p_miss, "p_miss")
        _check_probability(self.p_false, "p_false")

    def spec(self) -> str:
        return f"unreliable:{self.p_miss:g},{self.p_false:g}"

    def _perturb(
        self,
        heard: npt.NDArray[np.bool_],
        rng: Optional[np.random.Generator],
        scratch: Optional["_PerturbScratch"],
    ) -> Tuple[int, int]:
        assert rng is not None and scratch is not None
        draws, mask, mask2 = scratch.draws, scratch.mask, scratch.mask2
        rng.random(out=draws)
        np.less(draws, self.p_miss, out=mask)
        mask &= heard
        heard[mask] = False
        dropped = int(np.count_nonzero(mask))
        rng.random(out=draws)
        np.less(draws, self.p_false, out=mask)
        np.logical_not(heard, out=mask2)
        mask &= mask2
        heard[mask] = True
        return dropped, int(np.count_nonzero(mask))


class _PerturbScratch:
    """One bound channel's reusable perturbation buffers.

    Bound lazily to the first ``heard`` shape :meth:`BoundChannel.apply`
    sees (and rebound if the shape ever changes — a service rebind that
    grew the id space), then refilled in place every round: the uniform
    draw vector plus two boolean mask slots, enough for the widest
    model (``unreliable``) without any per-round allocation.
    """

    __slots__ = ("draws", "mask", "mask2")

    def __init__(self, shape: Tuple[int, ...]):
        self.draws = np.empty(shape, dtype=np.float64)
        self.mask = np.empty(shape, dtype=np.bool_)
        self.mask2 = np.empty(shape, dtype=np.bool_)


class BoundChannel:
    """A channel spec plus the per-engine perturbation counters.

    One instance per engine (per replica, in the batched engine), so
    ``drops_total`` / ``spurious_total`` count that trajectory's
    lifetime perturbations.  ``last_drops`` / ``last_spurious`` cover
    the current round: the engine calls :meth:`start_round` once per
    round before the first :meth:`apply`, and the two-channel engine's
    second application *accumulates* into the same round counters.
    """

    __slots__ = (
        "model",
        "drops_total",
        "spurious_total",
        "last_drops",
        "last_spurious",
        "_scratch",
    )

    def __init__(self, model: ChannelModel):
        self.model = model
        self.drops_total = 0
        self.spurious_total = 0
        self.last_drops = 0
        self.last_spurious = 0
        self._scratch: Optional[_PerturbScratch] = None

    @property
    def is_perfect(self) -> bool:
        return self.model.trivial

    def start_round(self) -> None:
        self.last_drops = 0
        self.last_spurious = 0

    def apply(
        self,
        heard: npt.NDArray[np.bool_],
        rng: Optional[np.random.Generator],
    ) -> npt.NDArray[np.bool_]:
        """Perturb a hear mask **in place** (and return it).

        ``heard`` is the fresh output of a hear-kernel call (solo) or a
        reusable scratch row (batched) — never an aliased input — so
        in-place mutation is safe at every call site.
        """
        scratch = self._scratch
        if not self.model.trivial and (
            scratch is None or scratch.draws.shape != heard.shape
        ):
            scratch = _PerturbScratch(heard.shape)
            self._scratch = scratch
        dropped, spurious = self.model._perturb(heard, rng, scratch)
        self.last_drops += dropped
        self.last_spurious += spurious
        self.drops_total += dropped
        self.spurious_total += spurious
        return heard

    def __repr__(self) -> str:
        return (
            f"BoundChannel({self.model.spec()!r}, "
            f"drops={self.drops_total}, spurious={self.spurious_total})"
        )


# ----------------------------------------------------------------------
# Registry (mirrors the engine/kernel registries)
# ----------------------------------------------------------------------
ChannelLike = Union[str, ChannelModel, None]

_CHANNELS: Dict[str, Callable[[str], ChannelModel]] = {}


def register_channel(name: str, factory: Callable[[str], ChannelModel]) -> None:
    """Register a channel factory under ``name``.

    ``factory`` receives the text after ``name:`` in a spec string
    (empty when absent) and returns a :class:`ChannelModel`.
    """
    if name in _CHANNELS:
        raise ValueError(f"channel {name!r} is already registered")
    _CHANNELS[name] = factory


def unregister_channel(name: str) -> None:
    _CHANNELS.pop(name, None)


def available_channels() -> Tuple[str, ...]:
    return tuple(sorted(_CHANNELS))


def channel_from_spec(spec: str) -> ChannelModel:
    """Parse a ``--channel`` spec string (see :data:`CHANNEL_SPECS`)."""
    name, _, argtext = spec.partition(":")
    factory = _CHANNELS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown channel {name!r}; available: {', '.join(available_channels())}"
        )
    return factory(argtext)


def resolve_channel(channel: ChannelLike) -> ChannelModel:
    """Coerce ``None`` / spec string / model instance to a model."""
    if channel is None:
        return PerfectChannel()
    if isinstance(channel, ChannelModel):
        return channel
    if isinstance(channel, str):
        return channel_from_spec(channel)
    raise TypeError(
        f"channel must be a spec string or ChannelModel, got {type(channel).__name__}"
    )


def _perfect_factory(argtext: str) -> ChannelModel:
    if argtext:
        raise ValueError("perfect takes no parameters")
    return PerfectChannel()


def _lossy_factory(argtext: str) -> ChannelModel:
    return LossyChannel(_probability(argtext, "p_miss"))


def _noisy_factory(argtext: str) -> ChannelModel:
    return NoisyChannel(_probability(argtext, "p_false"))


def _unreliable_factory(argtext: str) -> ChannelModel:
    parts = argtext.split(",")
    if len(parts) != 2:
        raise ValueError("unreliable takes exactly two parameters: P_MISS,P_FALSE")
    return UnreliableChannel(
        _probability(parts[0], "p_miss"), _probability(parts[1], "p_false")
    )


register_channel("perfect", _perfect_factory)
register_channel("lossy", _lossy_factory)
register_channel("noisy", _noisy_factory)
register_channel("unreliable", _unreliable_factory)
