"""The reference synchronous round engine for the beeping model.

This is the object-per-node, semantics-defining implementation: slow but
transparent.  The fast numpy engine in :mod:`repro.core.vectorized`
replicates its behaviour bit-for-bit (same seed → same trajectory) and is
tested against it.

Round structure (full-duplex beeping with collision detection):

1. every vertex ``v`` (in id order) receives one uniform draw and decides
   its beep pattern,
2. every vertex hears, per channel, the OR over its *neighbors'* beeps
   (its own beep is excluded — full duplex),
3. every vertex deterministically updates its state.

All three phases are synchronous: decisions in step 1 depend only on the
states at the start of the round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..devtools.seeding import SeedLike, resolve_rng
from ..graphs.graph import Graph
from .algorithm import BeepingAlgorithm, LocalKnowledge, NodeOutput
from .signals import Beeps

__all__ = ["RoundRecord", "BeepingNetwork"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one simulated round (for tracing/metrics)."""

    round_index: int
    #: Per-vertex transmitted patterns.
    sent: Tuple[Beeps, ...]
    #: Per-vertex heard patterns.
    heard: Tuple[Beeps, ...]

    def beep_count(self, channel: int = 0) -> int:
        """How many vertices beeped on ``channel`` this round."""
        return sum(1 for pattern in self.sent if pattern[channel])


class BeepingNetwork:
    """A synchronous anonymous beeping network executing one algorithm.

    Parameters
    ----------
    graph:
        The topology.
    algorithm:
        The anonymous node program (shared by all vertices — it is
        stateless; per-vertex state lives in the network).
    knowledge:
        Per-vertex :class:`LocalKnowledge`.  Must have length ``n``.
    seed:
        Seed or Generator for the per-round beep draws.
    initial_states:
        Optional explicit starting states; default is
        ``algorithm.fresh_state`` everywhere.  Pass the output of
        :meth:`randomize_states` (or use :mod:`repro.beeping.faults`) to
        start from arbitrary configurations.
    full_duplex:
        Reception model.  ``True`` (default) is the paper's model —
        "beeping with collision detection": a transmitting vertex still
        hears its neighbors' beeps.  ``False`` is the *half-duplex*
        variant, where a transmitting vertex hears nothing that round.
        Algorithm 1 provably needs full duplex (a solo beep is its
        membership certificate); the half-duplex mode exists to
        demonstrate that dependence (see ``bench_model_ablation``).
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: BeepingAlgorithm,
        knowledge: Sequence[LocalKnowledge],
        seed: SeedLike = None,
        initial_states: Optional[Sequence[Any]] = None,
        full_duplex: bool = True,
    ):
        if len(knowledge) != graph.num_vertices:
            raise ValueError(
                f"knowledge has length {len(knowledge)}, "
                f"expected {graph.num_vertices}"
            )
        self.graph = graph
        self.algorithm = algorithm
        self.knowledge: Tuple[LocalKnowledge, ...] = tuple(knowledge)
        self._rng = resolve_rng(seed)
        if initial_states is None:
            self._states: List[Any] = [
                algorithm.fresh_state(k) for k in self.knowledge
            ]
        else:
            if len(initial_states) != graph.num_vertices:
                raise ValueError("initial_states has wrong length")
            self._states = list(initial_states)
        self.full_duplex = bool(full_duplex)
        # Wake-up model: dormant vertices neither beep, hear, nor update.
        # All awake by default; see repro.beeping.wakeup for schedules.
        self._awake = [True] * graph.num_vertices
        self._round = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Number of completed rounds."""
        return self._round

    @property
    def states(self) -> Tuple[Any, ...]:
        """A snapshot of all vertex states (start-of-round values)."""
        return tuple(self._states)

    def set_states(self, states: Sequence[Any]) -> None:
        """Overwrite all vertex states (used by the fault injector)."""
        if len(states) != self.graph.num_vertices:
            raise ValueError("states has wrong length")
        self._states = list(states)

    def set_state(self, vertex: int, state: Any) -> None:
        """Overwrite one vertex's state (targeted fault)."""
        self._states[vertex] = state

    def outputs(self) -> Tuple[NodeOutput, ...]:
        """Per-vertex MIS decisions for the current states."""
        return tuple(
            self.algorithm.output(s, k)
            for s, k in zip(self._states, self.knowledge)
        )

    def mis_vertices(self) -> frozenset:
        """Vertices currently reporting ``IN_MIS``."""
        return self.algorithm.mis_vertices(self._states, self.knowledge)

    def is_legal(self) -> bool:
        """Whether the current configuration satisfies the algorithm's
        legality predicate (i.e. the run has stabilized)."""
        return self.algorithm.is_legal_configuration(
            self.graph, self._states, self.knowledge
        )

    def randomize_states(self) -> None:
        """Replace every state by a uniformly random one (full corruption)."""
        self._states = [
            self.algorithm.random_state(k, self._rng) for k in self.knowledge
        ]

    # ------------------------------------------------------------------
    # Wake-up model (adversarial activation schedules)
    # ------------------------------------------------------------------
    @property
    def awake(self) -> Tuple[bool, ...]:
        """Per-vertex awake flags.  A *dormant* vertex transmits nothing,
        hears nothing, and does not update its state — the activation
        model of Afek et al.'s lower-bound setting, where an adversary
        chooses wake-up rounds."""
        return tuple(self._awake)

    def set_awake(self, vertex: int, awake: bool = True) -> None:
        """Wake (or suspend) a single vertex."""
        self._awake[vertex] = bool(awake)

    def set_all_awake(self, awake: bool = True) -> None:
        """Wake or suspend every vertex at once."""
        self._awake = [bool(awake)] * self.graph.num_vertices

    def all_awake(self) -> bool:
        return all(self._awake)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> RoundRecord:
        """Execute one synchronous round and return its record."""
        n = self.graph.num_vertices
        algorithm = self.algorithm
        num_channels = algorithm.num_channels

        # Phase 1: beep decisions, one uniform per vertex in id order.
        # Drawing all n uniforms in a single call keeps the stream
        # identical to the vectorized engine's ``rng.random(n)``.
        draws = self._rng.random(n)
        silent = (False,) * num_channels
        sent: List[Beeps] = [
            algorithm.beeps(self._states[v], self.knowledge[v], float(draws[v]))
            if self._awake[v]
            else silent
            for v in range(n)
        ]
        for v, pattern in enumerate(sent):
            if len(pattern) != num_channels:
                raise ValueError(
                    f"vertex {v} produced a {len(pattern)}-channel pattern; "
                    f"algorithm declares {num_channels} channels"
                )

        # Phase 2: reception — OR over neighbors, own beep excluded.
        # In half-duplex mode a transmitting vertex is deaf this round.
        heard: List[Beeps] = []
        silence = (False,) * num_channels
        for v in range(n):
            if not self._awake[v]:
                heard.append(silence)  # dormant vertices are deaf
                continue
            if not self.full_duplex and any(sent[v]):
                heard.append(silence)
                continue
            bits = [False] * num_channels
            for w in self.graph.neighbors(v):
                pattern = sent[w]
                for c in range(num_channels):
                    if pattern[c]:
                        bits[c] = True
            heard.append(tuple(bits))

        # Phase 3: synchronous updates (same per-vertex draw as phase 1).
        # Dormant vertices keep their state frozen.
        self._states = [
            algorithm.step(
                self._states[v], sent[v], heard[v], self.knowledge[v],
                u=float(draws[v]),
            )
            if self._awake[v]
            else self._states[v]
            for v in range(n)
        ]
        record = RoundRecord(
            round_index=self._round, sent=tuple(sent), heard=tuple(heard)
        )
        self._round += 1
        return record

    def run(self, rounds: int) -> List[RoundRecord]:
        """Execute ``rounds`` rounds and return their records."""
        return [self.step() for _ in range(rounds)]
