"""Pluggable round schedulers: synchronous, bounded drift, adversarial.

The paper's rounds are perfectly synchronous: every vertex beeps,
hears, and updates in lockstep.  A :class:`Scheduler` relaxes that —
per round it decides which vertices *fire* (recompute their beep and
apply their update) and which are *delayed*.

Stale-carrier semantics
-----------------------
A delayed vertex models a slow clock whose current round is stretched:
it keeps transmitting its **stale** beep (the carrier from the last
round it fired — silence before it ever fired) and does not update its
level.  Neighbors therefore hear a consistent, if outdated, signal,
exactly the "stale-round reads" regime of unsynchronized-start beeping
models.  The engines own the carrier arrays; schedulers only produce
activity masks.

Models
------
* :class:`SynchronousScheduler` — the paper's model; every vertex
  fires every round (``active_mask`` returns ``None``, letting the
  engines skip carrier bookkeeping entirely).
* :class:`BoundedDriftScheduler` — each vertex independently skips a
  round with probability ``p_skip``, but never falls more than
  ``max_lag`` rounds behind: after ``max_lag`` consecutive skips the
  next round is a forced fire, so clock drift stays bounded.
* :class:`AdversarialScheduler` — composes the existing wake-up
  adversary (:class:`repro.beeping.wakeup.WakeupSchedule`) with
  optional post-wake drift: a vertex is dormant (silent carrier, no
  updates) until its wake round, then fires under the drift law.

RNG discipline
--------------
Like channel models (and enforced by the same devtools rule RPR105),
schedulers never construct generators: the drift draws come from the
engine-bound scheduler stream passed into
:meth:`BoundScheduler.active_mask`.  Drifting schedulers draw
``rng.random(n)`` every round regardless of the mask they return, so
the stream layout is data-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, Optional, Tuple, Union

import numpy as np
import numpy.typing as npt

from .wakeup import WakeupSchedule

__all__ = [
    "SCHEDULER_SPECS",
    "Scheduler",
    "SynchronousScheduler",
    "BoundedDriftScheduler",
    "AdversarialScheduler",
    "BoundScheduler",
    "SchedulerLike",
    "register_scheduler",
    "unregister_scheduler",
    "available_schedulers",
    "scheduler_from_spec",
    "resolve_scheduler",
]

#: Accepted ``--scheduler`` spec strings (parsed by
#: :func:`scheduler_from_spec`).
SCHEDULER_SPECS = (
    "synchronous",
    "drift:P_SKIP[,MAX_LAG]",
    "adversarial[:KIND[,GAP]]",
)

#: Wake-up kinds buildable from the vertex count alone.  Graph-aware
#: kinds (``frontier``, ``high_degree_last``) and the seeded ``random``
#: kind need data a spec string cannot carry — pass an explicit
#: :class:`WakeupSchedule` to :class:`AdversarialScheduler` for those.
ADVERSARIAL_KINDS = ("simultaneous", "staggered")


class Scheduler:
    """Base class for scheduler specs (immutable value objects).

    ``trivial`` marks the synchronous scheduler: engines combine it
    with the perfect channel into the byte-identical fast path.
    ``needs_rng`` tells the engine whether to derive a scheduler
    stream at construction.
    """

    name: ClassVar[str] = ""
    trivial: ClassVar[bool] = False

    @property
    def needs_rng(self) -> bool:
        return True

    def bind(self, n: int) -> "BoundScheduler":
        """Allocate the per-engine clock state for ``n`` vertices."""
        raise NotImplementedError

    def spec(self) -> str:
        """Round-trippable spec string."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"


class BoundScheduler:
    """Per-engine clock state: produces one activity mask per round.

    ``active_mask`` returns ``None`` iff the scheduler is synchronous
    (it never gates) — engines then skip all carrier/gating work.  A
    non-synchronous scheduler always returns a mask, even when it
    happens to be all-True, so the engines' carrier arrays advance
    every round.
    """

    is_synchronous = False

    def __init__(self, model: Scheduler, n: int):
        self.model = model
        self.n = n

    def active_mask(
        self,
        round_index: int,
        rng: Optional[np.random.Generator],
    ) -> Optional[npt.NDArray[np.bool_]]:
        raise NotImplementedError


class _BoundSynchronous(BoundScheduler):
    is_synchronous = True

    def active_mask(
        self,
        round_index: int,
        rng: Optional[np.random.Generator],
    ) -> Optional[npt.NDArray[np.bool_]]:
        return None


@dataclass(frozen=True)
class SynchronousScheduler(Scheduler):
    """The paper's model: every vertex fires every round."""

    name: ClassVar[str] = "synchronous"
    trivial: ClassVar[bool] = True

    @property
    def needs_rng(self) -> bool:
        return False

    def bind(self, n: int) -> BoundScheduler:
        return _BoundSynchronous(self, n)

    def spec(self) -> str:
        return "synchronous"


class _BoundDrift(BoundScheduler):
    def __init__(self, model: "BoundedDriftScheduler", n: int):
        super().__init__(model, n)
        self._lag = np.zeros(n, dtype=np.int64)
        self._draws = np.empty(n, dtype=np.float64)
        self._p_skip = model.p_skip
        self._max_lag = model.max_lag

    def active_mask(
        self,
        round_index: int,
        rng: Optional[np.random.Generator],
    ) -> Optional[npt.NDArray[np.bool_]]:
        assert rng is not None
        draws = self._draws
        rng.random(out=draws)
        active = (draws >= self._p_skip) | (self._lag >= self._max_lag)
        # In place: +1 everywhere, then zero the fired clocks — exactly
        # np.where(active, 0, lag + 1) without rebinding the buffer.
        np.add(self._lag, 1, out=self._lag)
        self._lag[active] = 0
        return active


@dataclass(frozen=True)
class BoundedDriftScheduler(Scheduler):
    """Independent per-vertex skips with a hard lag bound.

    Each round each vertex skips with probability ``p_skip``; a vertex
    that has skipped ``max_lag`` rounds in a row fires unconditionally,
    so no clock drifts more than ``max_lag`` rounds behind — the
    bounded-drift condition under which convergence remains provable.
    """

    p_skip: float
    max_lag: int = 3
    name: ClassVar[str] = "drift"

    def __post_init__(self) -> None:
        if not 0.0 < self.p_skip < 1.0:
            raise ValueError(
                f"p_skip must be in (0, 1), got {self.p_skip} "
                "(use the synchronous scheduler for p_skip = 0)"
            )
        if self.max_lag < 1:
            raise ValueError(f"max_lag must be >= 1, got {self.max_lag}")

    def bind(self, n: int) -> BoundScheduler:
        return _BoundDrift(self, n)

    def spec(self) -> str:
        return f"drift:{self.p_skip:g},{self.max_lag}"


class _BoundAdversarial(BoundScheduler):
    def __init__(self, model: "AdversarialScheduler", n: int):
        super().__init__(model, n)
        schedule = model.schedule
        if schedule is not None:
            if len(schedule.wake_round) != n:
                raise ValueError(
                    f"explicit wake-up schedule covers {len(schedule.wake_round)} "
                    f"vertices but the engine has {n}"
                )
        elif model.kind == "simultaneous":
            schedule = WakeupSchedule.simultaneous(n)
        else:
            schedule = WakeupSchedule.staggered(n, gap=model.gap)
        self._wake = np.asarray(schedule.wake_round, dtype=np.int64)
        self._lag = np.zeros(n, dtype=np.int64)
        self._draws = np.empty(n, dtype=np.float64)
        self._p_skip = model.p_skip
        self._max_lag = model.max_lag

    def active_mask(
        self,
        round_index: int,
        rng: Optional[np.random.Generator],
    ) -> Optional[npt.NDArray[np.bool_]]:
        awake = self._wake <= round_index
        if self._p_skip == 0.0:
            return awake
        assert rng is not None
        # Drift draws happen every round, awake or not, so the stream
        # layout is independent of the wake pattern.
        draws = self._draws
        rng.random(out=draws)
        fires = (draws >= self._p_skip) | (self._lag >= self._max_lag)
        active = awake & fires
        # Dormant vertices hold lag 0: the drift clock only starts
        # ticking once the adversary wakes them.  In place: +1
        # everywhere, then zero fired and dormant clocks — exactly
        # np.where(active | ~awake, 0, lag + 1) without rebinding.
        np.add(self._lag, 1, out=self._lag)
        self._lag[active] = 0
        self._lag[~awake] = 0
        return active


@dataclass(frozen=True)
class AdversarialScheduler(Scheduler):
    """Wake-up adversary composed with optional post-wake drift.

    ``schedule`` pins an explicit :class:`WakeupSchedule` (use this for
    the graph-aware or seeded constructors); otherwise ``kind`` /
    ``gap`` build one from the vertex count at bind time (see
    :data:`ADVERSARIAL_KINDS`).  With ``p_skip > 0`` awake vertices
    additionally drift under the bounded-drift law.
    """

    schedule: Optional[WakeupSchedule] = None
    kind: str = "staggered"
    gap: int = 1
    p_skip: float = 0.0
    max_lag: int = 3
    name: ClassVar[str] = "adversarial"

    def __post_init__(self) -> None:
        if self.schedule is None and self.kind not in ADVERSARIAL_KINDS:
            raise ValueError(
                f"unknown adversarial kind {self.kind!r}; choose one of "
                f"{ADVERSARIAL_KINDS} or pass an explicit schedule"
            )
        if self.gap < 1:
            raise ValueError(f"gap must be >= 1, got {self.gap}")
        if not 0.0 <= self.p_skip < 1.0:
            raise ValueError(f"p_skip must be in [0, 1), got {self.p_skip}")
        if self.max_lag < 1:
            raise ValueError(f"max_lag must be >= 1, got {self.max_lag}")

    @property
    def needs_rng(self) -> bool:
        return self.p_skip > 0.0

    def bind(self, n: int) -> BoundScheduler:
        return _BoundAdversarial(self, n)

    def spec(self) -> str:
        if self.schedule is not None:
            return f"adversarial:explicit[{len(self.schedule.wake_round)}]"
        return f"adversarial:{self.kind},{self.gap}"


# ----------------------------------------------------------------------
# Registry (mirrors the engine/kernel/channel registries)
# ----------------------------------------------------------------------
SchedulerLike = Union[str, Scheduler, None]

_SCHEDULERS: Dict[str, Callable[[str], Scheduler]] = {}


def register_scheduler(name: str, factory: Callable[[str], Scheduler]) -> None:
    """Register a scheduler factory under ``name``.

    ``factory`` receives the text after ``name:`` in a spec string
    (empty when absent) and returns a :class:`Scheduler`.
    """
    if name in _SCHEDULERS:
        raise ValueError(f"scheduler {name!r} is already registered")
    _SCHEDULERS[name] = factory


def unregister_scheduler(name: str) -> None:
    _SCHEDULERS.pop(name, None)


def available_schedulers() -> Tuple[str, ...]:
    return tuple(sorted(_SCHEDULERS))


def scheduler_from_spec(spec: str) -> Scheduler:
    """Parse a ``--scheduler`` spec string (see :data:`SCHEDULER_SPECS`)."""
    name, _, argtext = spec.partition(":")
    factory = _SCHEDULERS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_schedulers())}"
        )
    return factory(argtext)


def resolve_scheduler(scheduler: SchedulerLike) -> Scheduler:
    """Coerce ``None`` / spec string / model instance to a model."""
    if scheduler is None:
        return SynchronousScheduler()
    if isinstance(scheduler, Scheduler):
        return scheduler
    if isinstance(scheduler, str):
        return scheduler_from_spec(scheduler)
    raise TypeError(
        f"scheduler must be a spec string or Scheduler, got {type(scheduler).__name__}"
    )


def _synchronous_factory(argtext: str) -> Scheduler:
    if argtext:
        raise ValueError("synchronous takes no parameters")
    return SynchronousScheduler()


def _drift_factory(argtext: str) -> Scheduler:
    if not argtext:
        raise ValueError("drift requires P_SKIP (e.g. drift:0.1)")
    parts = argtext.split(",")
    if len(parts) > 2:
        raise ValueError("drift takes at most two parameters: P_SKIP[,MAX_LAG]")
    p_skip = float(parts[0])
    max_lag = int(parts[1]) if len(parts) == 2 else 3
    return BoundedDriftScheduler(p_skip, max_lag)


def _adversarial_factory(argtext: str) -> Scheduler:
    if not argtext:
        return AdversarialScheduler()
    parts = argtext.split(",")
    if len(parts) > 2:
        raise ValueError("adversarial takes at most two parameters: KIND[,GAP]")
    kind = parts[0]
    gap = int(parts[1]) if len(parts) == 2 else 1
    return AdversarialScheduler(kind=kind, gap=gap)


register_scheduler("synchronous", _synchronous_factory)
register_scheduler("drift", _drift_factory)
register_scheduler("adversarial", _adversarial_factory)
