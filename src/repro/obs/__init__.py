"""Zero-perturbation observability: metrics, per-round collectors, profiling.

Everything in this package is a pure *read* of engine state — collectors
never consume randomness or mutate levels, so enabling observability
cannot change an execution (enforced by ``tests/test_observability.py``).
See ``docs/observability.md`` for the metric catalogue.
"""

from .collectors import BatchedCollector, RunCollector, StructureView
from .harness import (
    MetricsOptions,
    SweepMetrics,
    SweepRecorder,
    collect_sweep_metrics,
    collector_for_backend,
)
from .profiling import PhaseProfiler, peak_rss_bytes, wall_clock
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import (
    SINK_KINDS,
    CsvSink,
    InMemorySink,
    JsonlSink,
    MetricSink,
    make_sink,
)

__all__ = [
    "BatchedCollector",
    "Counter",
    "CsvSink",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricSink",
    "MetricsOptions",
    "MetricsRegistry",
    "PhaseProfiler",
    "RunCollector",
    "SINK_KINDS",
    "StructureView",
    "SweepMetrics",
    "SweepRecorder",
    "collect_sweep_metrics",
    "collector_for_backend",
    "make_sink",
    "peak_rss_bytes",
    "wall_clock",
]
