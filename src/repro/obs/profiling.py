"""Lightweight profiling hooks: phase timers, rates, peak memory.

This is the *only* module in ``src/repro`` allowed to read wall-clock
timers (enforced by lint rules RPR201/RPR501): every other module must
route timing through a :class:`PhaseProfiler`, which keeps profiling
centralized and monkeypatchable in tests — inject deterministic ``wall``
/ ``cpu`` callables and timing-dependent code becomes testable.

Profiler snapshots are plain dicts, mergeable across processes like
:class:`~repro.obs.registry.MetricsRegistry` snapshots (durations and
call counts add, peaks take the max), and small enough to embed in the
``BENCH_*.json`` envelope.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

__all__ = ["PhaseProfiler", "peak_rss_bytes", "wall_clock"]


def wall_clock() -> Callable[[], float]:
    """The blessed wall-clock callable (seconds, monotonic).

    Code that needs raw point-in-time reads (e.g. the serving stack's
    per-op latency, where a :class:`PhaseProfiler` phase per op would
    aggregate away the percentiles) fetches its clock here instead of
    touching :mod:`time` directly, keeping the RPR201/RPR501 timer home
    intact and the clock injectable in tests.
    """
    return time.perf_counter


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or None if unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    import sys

    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(raw) if sys.platform == "darwin" else int(raw) * 1024


class PhaseProfiler:
    """Named wall/CPU phase timers plus rounds-per-second accounting.

    Usage::

        profiler = PhaseProfiler()
        with profiler.phase("sweep"):
            result = run_sweep(...)
        profiler.add_rounds(total_rounds)
        print(profiler.format())

    Parameters
    ----------
    wall, cpu:
        Clock callables (seconds).  Default to ``time.perf_counter`` and
        ``time.process_time``; tests inject counters instead.
    """

    def __init__(
        self,
        wall: Optional[Callable[[], float]] = None,
        cpu: Optional[Callable[[], float]] = None,
    ) -> None:
        self._wall = wall if wall is not None else time.perf_counter
        self._cpu = cpu if cpu is not None else time.process_time
        self.phases: Dict[str, Dict[str, float]] = {}
        self.rounds = 0
        self.peak_bytes = 0

    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one pass through a named phase (re-entrant by name)."""
        wall0, cpu0 = self._wall(), self._cpu()
        try:
            yield
        finally:
            entry = self.phases.setdefault(
                name, {"wall_s": 0.0, "cpu_s": 0.0, "calls": 0}
            )
            entry["wall_s"] += self._wall() - wall0
            entry["cpu_s"] += self._cpu() - cpu0
            entry["calls"] += 1

    def add_rounds(self, rounds: int) -> None:
        self.rounds += int(rounds)

    def observe_memory(self, nbytes: Optional[int]) -> None:
        if nbytes is not None and nbytes > self.peak_bytes:
            self.peak_bytes = int(nbytes)

    # ------------------------------------------------------------------
    def wall_seconds(self, name: str) -> float:
        return self.phases.get(name, {}).get("wall_s", 0.0)

    def rounds_per_sec(self, name: str) -> Optional[float]:
        """Simulated rounds per wall-clock second of the named phase."""
        wall = self.wall_seconds(name)
        if wall <= 0.0 or self.rounds == 0:
            return None
        return self.rounds / wall

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe, picklable, mergeable copy."""
        return {
            "phases": {
                name: dict(entry) for name, entry in sorted(self.phases.items())
            },
            "rounds": self.rounds,
            "peak_bytes": self.peak_bytes,
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker's snapshot in (durations add, peaks max)."""
        for name, entry in snapshot.get("phases", {}).items():
            mine = self.phases.setdefault(
                name, {"wall_s": 0.0, "cpu_s": 0.0, "calls": 0}
            )
            mine["wall_s"] += entry.get("wall_s", 0.0)
            mine["cpu_s"] += entry.get("cpu_s", 0.0)
            mine["calls"] += entry.get("calls", 0)
        self.rounds += snapshot.get("rounds", 0)
        peak = snapshot.get("peak_bytes", 0)
        if peak > self.peak_bytes:
            self.peak_bytes = peak

    def format(self) -> str:
        """Human-readable phase report (CLI ``--metrics summary``)."""
        lines: List[str] = []
        for name, entry in sorted(self.phases.items()):
            line = (
                f"{name}: wall {entry['wall_s']:.3f}s, "
                f"cpu {entry['cpu_s']:.3f}s, calls {int(entry['calls'])}"
            )
            rate = self.rounds_per_sec(name)
            if rate is not None:
                line += f", {rate:,.0f} rounds/s"
            lines.append(line)
        if self.peak_bytes:
            lines.append(f"peak level memory: {self.peak_bytes:,} bytes")
        return "\n".join(lines)
