"""Metric primitives and the registry that aggregates them.

The observability layer separates *collection* (per-round collectors in
:mod:`repro.obs.collectors`) from *aggregation*: collectors push scalar
updates into a :class:`MetricsRegistry`, which owns three primitive
kinds —

* :class:`Counter` — monotone sum (runs, rounds, beeps),
* :class:`Gauge` — last/extreme value (peak replica memory),
* :class:`Histogram` — power-of-two bucketed distribution
  (stabilization rounds).

Registries are designed to cross process boundaries: ``snapshot()``
returns a plain JSON-safe structure, and ``merge()`` folds a snapshot
back in (counters add, gauges take the max, histogram buckets add).
That is exactly what the sweep executors need — each worker aggregates
locally and the parent merges the returned snapshots, so no file or
lock is shared between processes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: ``(name, sorted-labels)`` — the identity of one metric instance.
MetricKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


class Counter:
    """A monotone sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value; cross-worker merge keeps the maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Record ``value`` only if it exceeds the current reading."""
        if value > self.value:
            self.value = value


class Histogram:
    """Power-of-two bucketed distribution with count/sum/min/max.

    Bucket ``k`` counts observations ``x`` with ``2^(k-1) < x <= 2^k``
    (bucket 0 holds ``x <= 1``).  Good enough resolution for round
    counts while staying tiny and merge-friendly.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    @staticmethod
    def bucket_index(value: float) -> int:
        index = 0
        bound = 1.0
        while value > bound and index < 64:
            index += 1
            bound *= 2.0
        return index

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """Get-or-create metric instances keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(name: str, labels: Mapping[str, Any]) -> MetricKey:
        return name, tuple(sorted(labels.items()))

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._counters.setdefault(self._key(name, labels), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._gauges.setdefault(self._key(name, labels), Gauge())

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._histograms.setdefault(self._key(name, labels), Histogram())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Picklable snapshots and cross-worker merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """A JSON-safe, picklable copy of every metric."""

        def entry(key: MetricKey) -> Dict[str, Any]:
            return {"name": key[0], "labels": {k: v for k, v in key[1]}}

        counters: List[Dict[str, Any]] = []
        for key in sorted(self._counters, key=repr):
            row = entry(key)
            row["value"] = self._counters[key].value
            counters.append(row)
        gauges: List[Dict[str, Any]] = []
        for key in sorted(self._gauges, key=repr):
            row = entry(key)
            row["value"] = self._gauges[key].value
            gauges.append(row)
        histograms: List[Dict[str, Any]] = []
        for key in sorted(self._histograms, key=repr):
            h = self._histograms[key]
            row = entry(key)
            row.update(
                {
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum,
                    "max": h.maximum,
                    "buckets": {str(k): v for k, v in sorted(h.buckets.items())},
                }
            )
            histograms.append(row)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: Mapping[str, Iterable[Mapping[str, Any]]]) -> None:
        """Fold a :meth:`snapshot` back in (see module docstring)."""
        for row in snapshot.get("counters", []):
            self.counter(row["name"], **row["labels"]).inc(row["value"])
        for row in snapshot.get("gauges", []):
            self.gauge(row["name"], **row["labels"]).set_max(row["value"])
        for row in snapshot.get("histograms", []):
            h = self.histogram(row["name"], **row["labels"])
            h.count += row["count"]
            h.total += row["total"]
            for bound in ("min", "max"):
                value = row.get(bound)
                if value is None:
                    continue
                if bound == "min" and (h.minimum is None or value < h.minimum):
                    h.minimum = value
                if bound == "max" and (h.maximum is None or value > h.maximum):
                    h.maximum = value
            for index, count in row.get("buckets", {}).items():
                index = int(index)
                h.buckets[index] = h.buckets.get(index, 0) + count

    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        """Flat human/table-friendly rows, deterministically ordered."""
        out: List[Dict[str, Any]] = []
        snap = self.snapshot()
        for row in snap["counters"]:
            out.append({"kind": "counter", **row})
        for row in snap["gauges"]:
            out.append({"kind": "gauge", **row})
        for row in snap["histograms"]:
            mean = row["total"] / row["count"] if row["count"] else None
            out.append(
                {
                    "kind": "histogram",
                    "name": row["name"],
                    "labels": row["labels"],
                    "count": row["count"],
                    "mean": mean,
                    "min": row["min"],
                    "max": row["max"],
                }
            )
        return out

    def format(self) -> str:
        """A small fixed-width report (CLI ``--metrics summary``)."""
        lines: List[str] = []
        for row in self.rows():
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            name = f"{row['name']}{{{labels}}}" if labels else row["name"]
            if row["kind"] == "histogram":
                mean = "-" if row["mean"] is None else f"{row['mean']:.1f}"
                lines.append(
                    f"{name}: count={row['count']} mean={mean} "
                    f"min={row['min']} max={row['max']}"
                )
            else:
                lines.append(f"{name}: {row['value']}")
        return "\n".join(lines)
