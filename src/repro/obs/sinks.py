"""Pluggable destinations for per-round metric records.

A *record* is one flat JSON-safe dict describing one observed round of
one run (see :mod:`repro.obs.collectors` for the schema).  Sinks only
ever receive finished records — they never see engine state — so any
sink is zero-perturbation by construction.

Three built-ins:

* :class:`InMemorySink` — keeps records in a list (tests, summaries),
* :class:`JsonlSink` — one JSON object per line, sorted keys,
* :class:`CsvSink` — flat CSV; the header is fixed by the first record.
"""

from __future__ import annotations

import csv
import io
import json
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Union

__all__ = ["MetricSink", "InMemorySink", "JsonlSink", "CsvSink", "make_sink", "SINK_KINDS"]

SINK_KINDS = ("memory", "jsonl", "csv")


class MetricSink:
    """Interface: receives finished per-round records."""

    def emit(self, record: Mapping[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class InMemorySink(MetricSink):
    """Buffers records in :attr:`records` (the default sink)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))


def _open_target(target: Union[str, TextIO]) -> "tuple[TextIO, bool]":
    """(stream, owns_it) — ``"-"`` means stdout, strings are paths."""
    if isinstance(target, str):
        if target == "-":
            return sys.stdout, False
        return open(target, "w", encoding="utf-8"), True
    return target, False


class JsonlSink(MetricSink):
    """One record per line as canonical (sorted-keys) JSON."""

    def __init__(self, target: Union[str, TextIO]) -> None:
        self._stream, self._owns = _open_target(target)
        self.emitted = 0

    def emit(self, record: Mapping[str, Any]) -> None:
        self._stream.write(json.dumps(record, sort_keys=True))
        self._stream.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()


class CsvSink(MetricSink):
    """Flat CSV; nested values (lists) are JSON-encoded in their cell.

    The column set is pinned by ``fields`` or, when omitted, by the keys
    of the first record (later records may be sparse but must not add
    columns).
    """

    def __init__(
        self,
        target: Union[str, TextIO],
        fields: Optional[Sequence[str]] = None,
    ) -> None:
        self._stream, self._owns = _open_target(target)
        self._fields: Optional[List[str]] = list(fields) if fields else None
        self._writer: Optional[Any] = None
        self.emitted = 0

    @staticmethod
    def _cell(value: Any) -> Any:
        if isinstance(value, (list, tuple, dict)):
            return json.dumps(value, sort_keys=True)
        return value

    def emit(self, record: Mapping[str, Any]) -> None:
        if self._writer is None:
            if self._fields is None:
                self._fields = list(record.keys())
            self._writer = csv.DictWriter(
                self._stream, fieldnames=self._fields, extrasaction="ignore"
            )
            self._writer.writeheader()
        self._writer.writerow({k: self._cell(v) for k, v in record.items()})
        self.emitted += 1

    def close(self) -> None:
        if self._owns:
            self._stream.close()
        else:
            self._stream.flush()


def make_sink(kind: str, target: Union[str, TextIO, None] = None) -> MetricSink:
    """Factory for the built-in sinks (CLI plumbing)."""
    if kind == "memory":
        return InMemorySink()
    if kind == "jsonl":
        return JsonlSink(target if target is not None else io.StringIO())
    if kind == "csv":
        return CsvSink(target if target is not None else io.StringIO())
    raise ValueError(f"unknown sink kind {kind!r}; choose one of {SINK_KINDS}")
