"""Zero-perturbation per-round collectors for the Section-3 observables.

A collector watches an execution and records, for every executed round,
the structural quantities the paper's analysis is phrased over:

========================  =============================================
record field              paper quantity
========================  =============================================
``i_size``                ``|I_t|`` — the MIS-so-far (Section 3)
``s_size``                ``|S_t| = |I_t ∪ N(I_t)|`` — the stable set
``prominent``             ``|PM_t| = |{v : ℓ_t(v) ≤ 0}|`` (Def. 3.3)
``legal``                 legality of the start-of-round configuration
``beeps``                 transmissions per channel this round
``level_hist``            level histogram (optional, ``level_hist=True``)
========================  =============================================

Everything is computed from *reads* of the level array plus the fixed
adjacency — a collector never draws randomness and never mutates engine
state, so enabling one cannot change an execution (the zero-perturbation
contract, enforced by ``tests/test_observability.py``).

The collectors deliberately recompute the legality predicate with the
exact formula of :meth:`repro.core.engines.base.EngineBase.is_legal`:
the run loops then *reuse* the collector's verdict instead of evaluating
legality twice, which is what keeps metrics-on overhead small (the two
sparse matvecs per round are shared, not duplicated).

Record convention (matches ``drive()`` / :class:`TraceRecorder`): a
record describes a round that was actually *executed* — structure at the
start of the round plus the beeps sent during it.  The final legal
configuration terminates the run before stepping and is therefore not a
record, so a run that stabilizes after ``r`` rounds yields records
``0 … r−1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union
from weakref import WeakKeyDictionary

import numpy as np
import numpy.typing as npt

from ..core.kernels import GraphStructure, make_kernel, structure_for
from ..graphs.graph import Graph
from .registry import MetricsRegistry
from .sinks import MetricSink

__all__ = ["StructureView", "RunCollector", "BatchedCollector"]

#: What ``observe_beeps`` accepts: a channel mask, a tuple of channel
#: masks, or a tuple of pre-counted per-channel totals (reference path).
BeepObservation = Union[
    npt.NDArray[np.bool_],
    Tuple[npt.NDArray[np.bool_], ...],
    Tuple[int, ...],
]


@dataclass
class StructureView:
    """The fixed structure a collector measures levels against.

    Holds the sparse adjacency, the per-vertex ``ℓmax`` and level floor
    (``−ℓmax`` for Algorithm 1, ``0`` for Algorithm 2), and the channel
    count.  Built once per run; engines and policies both know how to
    produce one.
    """

    adjacency: Any  # scipy.sparse.csr_matrix (None until first use)
    ell_max: npt.NDArray[np.int64]
    floor: npt.NDArray[np.int64]
    channels: int = 1
    _adj_t: Any = None  # transpose, materialized lazily for row blocks
    graph: Optional[Graph] = None  # lazy-build source when adjacency is None
    kernel: Any = None  # HearKernel, adopted from the engine or lazy-built
    #: BoundChannel of the observed solo engine — adopted only when the
    #: channel is non-perfect, so perfect-channel records stay exactly
    #: the historical shape (no ``dropped``/``spurious`` fields).
    channel_state: Any = None
    #: Per-replica BoundChannel list of the observed batched engine.
    channels_state: Any = None

    # ------------------------------------------------------------------
    @classmethod
    def from_engine(cls, engine: Any) -> "StructureView":
        """View onto a solo :class:`EngineBase`-style engine."""
        floor = (
            -engine.ell_max
            if getattr(engine, "uses_negative_levels", True)
            else np.zeros_like(engine.ell_max)
        )
        channels = 1 if getattr(engine, "uses_negative_levels", True) else 2
        return cls(
            adjacency=engine.adjacency,
            ell_max=engine.ell_max,
            floor=floor,
            channels=channels,
            kernel=getattr(engine, "kernel", None),
        )

    @classmethod
    def from_batched_engine(cls, engine: Any) -> "StructureView":
        """View onto a :class:`BatchedEngine` (reuses its transpose)."""
        single = engine.algorithm == "single"
        view = cls(
            adjacency=engine.adjacency,
            ell_max=engine.ell_max,
            floor=-engine.ell_max if single else np.zeros_like(engine.ell_max),
            channels=1 if single else 2,
            kernel=getattr(engine, "kernel", None),
        )
        view._adj_t = getattr(engine, "_adj_t", None)
        return view

    @classmethod
    def from_policy(
        cls, graph: Graph, policy: Any, two_channel: bool = False
    ) -> "StructureView":
        """View from a topology + ℓmax policy (no engine required)."""
        ell_max = np.asarray(policy.ell_max, dtype=np.int64)
        floor = np.zeros_like(ell_max) if two_channel else -ell_max
        # Adjacency stays unbuilt: the run loops share the engine's
        # already-constructed matrix via :meth:`adopt_engine`, so a
        # policy-built view costs nothing the engine hasn't already paid.
        return cls(
            adjacency=None,
            ell_max=ell_max,
            floor=floor,
            channels=2 if two_channel else 1,
            graph=graph,
        )

    # ------------------------------------------------------------------
    def adopt_engine(self, engine: Any) -> None:
        """Share an engine's already-built structures and hear kernel.

        Both sides resolve their structure through the shared
        :func:`~repro.core.kernels.structure_for` cache on the same
        graph, so the shared forms are identical by construction —
        collectors only ever *read* them, making this a pure setup-cost
        optimization.  Adopting the engine's *kernel* additionally keeps
        the collector's aggregation strategy in lock-step with the run it
        observes.  Engines without these attributes (the reference
        network) are a no-op; the view then lazy-builds from
        :attr:`graph`.
        """
        if self.adjacency is None:
            adjacency = getattr(engine, "adjacency", None)
            if adjacency is not None:
                self.adjacency = adjacency
        if self._adj_t is None:
            adj_t = getattr(engine, "_adj_t", None)
            if adj_t is not None:
                self._adj_t = adj_t
        if self.kernel is None:
            kernel = getattr(engine, "kernel", None)
            if kernel is not None:
                self.kernel = kernel
        # Channel counters are *read-only* adoptions: the collector only
        # ever inspects the engine-owned counters after a step, so the
        # zero-perturbation contract is untouched.  Perfect channels are
        # deliberately not adopted — records keep the historical shape.
        if self.channel_state is None:
            bound = getattr(engine, "channel", None)
            if bound is not None and not bound.is_perfect:
                self.channel_state = bound
        if self.channels_state is None:
            bound_list = getattr(engine, "channels", None)
            if bound_list and not bound_list[0].is_perfect:
                self.channels_state = bound_list

    def _built_kernel(self) -> Any:
        """The hear kernel, lazy-built when no engine was adopted."""
        if self.kernel is None:
            if self.graph is not None:
                structure = structure_for(self.graph)
            elif self.adjacency is not None:
                structure = GraphStructure.from_csr(self.adjacency)
            else:
                raise ValueError("StructureView has neither adjacency nor graph")
            self.kernel = make_kernel("auto", structure)
        return self.kernel

    def _built_adjacency(self) -> Any:
        if self.adjacency is None:
            if self.graph is None:
                raise ValueError("StructureView has neither adjacency nor graph")
            self.adjacency = structure_for(self.graph).csr
        return self.adjacency

    def hear(self, active: npt.NDArray[np.bool_]) -> npt.NDArray[np.bool_]:
        """Vertices with ≥ 1 active neighbor (bool, kernel-delegated)."""
        return self._built_kernel().hear(active)

    def hear_rows(self, rows: npt.NDArray[np.bool_]) -> npt.NDArray[np.bool_]:
        """Row-wise :meth:`hear` over an ``(R', n)`` block."""
        return self._built_kernel().hear_rows(rows)

    def received(self, vec: npt.NDArray[np.int32]) -> npt.NDArray[np.int32]:
        """Neighbor-count transport (back-compat; prefer :meth:`hear`)."""
        return self._built_adjacency().dot(vec)

    def received_rows(self, rows: npt.NDArray[np.int32]) -> npt.NDArray[np.int32]:
        """Row-block counts (back-compat; prefer :meth:`hear_rows`)."""
        if self._adj_t is None:
            self._adj_t = self._built_adjacency().transpose().tocsr()
        cols = np.ascontiguousarray(rows.T)
        return np.ascontiguousarray(self._adj_t.dot(cols).T)


#: Run-level instrument handles per registry — finalize runs once per
#: replica, and the get-or-create label lookups are measurable at
#: batched speed, so each handle is resolved once.
_INSTRUMENT_CACHE: "WeakKeyDictionary[MetricsRegistry, Tuple[Any, ...]]" = (
    WeakKeyDictionary()
)


def _instruments(registry: MetricsRegistry, channels: int) -> Tuple[Any, ...]:
    cached = _INSTRUMENT_CACHE.get(registry)
    if cached is None or len(cached[3]) < channels:
        cached = (
            registry.counter("runs_total"),
            registry.counter("runs_stabilized_total"),
            registry.counter("rounds_total"),
            [
                registry.counter("beeps_total", channel=c + 1)
                for c in range(channels)
            ],
            registry.histogram("stabilization_rounds"),
            registry.gauge("peak_level_bytes"),
        )
        _INSTRUMENT_CACHE[registry] = cached
    return cached


def _mis_disjoint_from_dominated(view: StructureView) -> bool:
    """Whether ``|S_t|`` may be counted as ``|I_t| + |N(I_t)|``.

    A vertex in both ``I_t`` and ``N(I_t)`` would need an MIS neighbor
    that is simultaneously at its level floor (MIS membership) and at
    its ``ℓmax`` (the blocked-by-no-one condition) — impossible unless
    that neighbor has ``ℓmax = 0``.  Every real policy has ``ℓmax ≥ 1``,
    so the split saves the union pass; the degenerate case falls back.
    """
    return bool(view.ell_max.min() > 0)


def _row_counts(mask: npt.NDArray[np.bool_]) -> npt.NDArray[np.int32]:
    """Per-row popcount of a boolean matrix.

    ``einsum`` over the int8 view with an int32 accumulator beats
    ``mask.sum(axis=1)`` by ~2x at batched-row sizes, and this runs
    several times per observed round.
    """
    if mask.flags.c_contiguous:
        return np.einsum("ij->i", mask.view(np.int8), dtype=np.int32)
    return mask.sum(axis=1, dtype=np.int32)


def _beep_counts(out: BeepObservation) -> List[int]:
    """Per-channel transmission totals from any step-output shape."""
    channels: Sequence[Any] = out if isinstance(out, tuple) else (out,)
    counts: List[int] = []
    for channel in channels:
        if isinstance(channel, (int, np.integer)):
            counts.append(int(channel))
        else:
            counts.append(int(np.asarray(channel).sum()))
    return counts


def _level_histogram(
    levels: npt.NDArray[np.int64], floor_min: int, span: int
) -> List[List[int]]:
    counts = np.bincount(levels - floor_min, minlength=span)
    return [
        [int(level + floor_min), int(count)]
        for level, count in enumerate(counts)
        if count
    ]


class RunCollector:
    """Per-round Section-3 observables of one solo run.

    Drive one of two ways:

    * pass it as ``collector=`` to :func:`simulate_single` /
      :func:`simulate_two_channel` / :func:`run_until_stable`, or
    * call :meth:`observe_structure` (start of round) and
      :meth:`observe_beeps` (after stepping) by hand around any loop.

    Parameters
    ----------
    view:
        The fixed :class:`StructureView` of the run.
    labels:
        Identity attached to every record (config keys, rep index, …).
    registry:
        Optional :class:`MetricsRegistry` receiving run-level aggregates
        on :meth:`finalize`.
    sink:
        Optional :class:`MetricSink` receiving each record as it is
        completed (records are also kept in :attr:`records`).
    every:
        Emit only rounds ``0, every, 2·every, …`` (structure is still
        evaluated every round — the run loop reuses its legality).
    level_hist:
        Attach the per-round level histogram to each record.
    records:
        Optional caller-owned list to append records to *instead of* a
        fresh private one.  A harness running many collectors back to
        back (one per run) shares a single buffer this way — cheaper
        than funnelling every record through a sink call.
    """

    def __init__(
        self,
        view: StructureView,
        labels: Optional[Mapping[str, Any]] = None,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[MetricSink] = None,
        every: int = 1,
        level_hist: bool = False,
        records: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.view = view
        self.labels = dict(labels or {})
        self.registry = registry
        self.sink = sink
        self.every = every
        self.level_hist = level_hist
        self.records: List[Dict[str, Any]] = (
            records if records is not None else []
        )
        self.beep_totals = [0] * view.channels
        self.peak_level_bytes = 0
        self._round = -1
        self._pending: Optional[Dict[str, Any]] = None
        self._observed = False
        self._s_disjoint = _mis_disjoint_from_dominated(view)
        self._hist_offset = int(view.floor.min())
        self._hist_span = int(view.ell_max.max()) - self._hist_offset + 1
        # Reusable legality masks (hot-path allocation contract): two
        # (n,)-bool slots bound to the first observed shape, refilled in
        # place each round with out= ufuncs — value-identical to the
        # historical temporary chain.
        self._mask_a: Optional[npt.NDArray[np.bool_]] = None
        self._mask_b: Optional[npt.NDArray[np.bool_]] = None

    # ------------------------------------------------------------------
    def observe_structure(self, levels: npt.ArrayLike) -> bool:
        """Record the start-of-round structure; returns its legality.

        The returned flag is computed with the engines' exact legality
        formula, so callers may use it *instead of* ``is_legal()``.
        """
        levels = np.asarray(levels, dtype=np.int64)
        view = self.view
        self._round += 1
        self.peak_level_bytes = max(self.peak_level_bytes, int(levels.nbytes))

        in_mis = self._mask_a
        scratch = self._mask_b
        if in_mis is None or in_mis.shape != levels.shape or scratch is None:
            in_mis = self._mask_a = np.empty(levels.shape, dtype=np.bool_)
            scratch = self._mask_b = np.empty(levels.shape, dtype=np.bool_)
        np.not_equal(levels, view.ell_max, out=scratch)
        blocked = view.hear(scratch)
        np.equal(levels, view.floor, out=in_mis)
        np.logical_not(blocked, out=scratch)
        in_mis &= scratch  # in_mis = (levels == floor) & ~blocked
        dominated = view.hear(in_mis)
        np.equal(levels, view.ell_max, out=scratch)
        scratch &= dominated  # others_ok = (levels == ℓmax) & dominated
        scratch |= in_mis
        legal = bool(np.all(scratch))

        if self._round % self.every == 0:
            record: Optional[Dict[str, Any]] = self.labels.copy()
            record["round"] = self._round
            i_size = int(in_mis.sum())
            record["i_size"] = i_size
            record["s_size"] = (
                i_size + int(dominated.sum())
                if self._s_disjoint
                else int((in_mis | dominated).sum())
            )
            record["prominent"] = int((levels <= 0).sum())
            record["legal"] = legal
            if self.level_hist:
                record["level_hist"] = _level_histogram(
                    levels, self._hist_offset, self._hist_span
                )
        else:
            record = None  # beep totals still accumulate for this round
        self._pending = record
        self._observed = True
        return legal

    def observe_beeps(self, out: BeepObservation) -> None:
        """Complete the pending record with this round's transmissions."""
        if not self._observed:
            raise RuntimeError("observe_beeps() without observe_structure()")
        counts = _beep_counts(out)
        for channel, count in enumerate(counts[: len(self.beep_totals)]):
            self.beep_totals[channel] += count
        record, self._pending = self._pending, None
        self._observed = False
        if record is None:  # not an emitted round (``every`` cadence)
            return
        record["beeps"] = counts
        channel_state = self.view.channel_state
        if channel_state is not None:  # non-perfect channel adopted
            record["dropped"] = channel_state.last_drops
            record["spurious"] = channel_state.last_spurious
        self.records.append(record)
        if self.sink is not None:
            self.sink.emit(record)

    def finalize(self, stabilized: bool, rounds: int) -> None:
        """Fold run-level aggregates into the registry; drop pendings."""
        self._pending = None
        self._observed = False
        if self.registry is None:
            return
        runs, stab, rounds_c, beeps_c, hist, peak = _instruments(
            self.registry, self.view.channels
        )
        runs.inc()
        if stabilized:
            stab.inc()
        rounds_c.inc(rounds)
        for channel_counter, total in zip(beeps_c, self.beep_totals):
            channel_counter.inc(total)
        hist.observe(float(rounds))
        peak.set_max(self.peak_level_bytes)
        channel_state = self.view.channel_state
        if channel_state is not None:  # non-perfect channel adopted
            self.registry.counter("channel_dropped_beeps_total").inc(
                channel_state.drops_total
            )
            self.registry.counter("channel_spurious_beeps_total").inc(
                channel_state.spurious_total
            )

    # ------------------------------------------------------------------
    def series(self, field: str) -> List[Any]:
        """One column of the recorded series, in round order."""
        return [record[field] for record in self.records]


class BatchedCollector:
    """Per-replica Section-3 series from one matmul pass per round.

    The structural masks of *all* active replicas are computed together
    on the ``(R', n)`` level block — the same two sparse products the
    batched legality check already needs, shared with it — and fan out
    into one record per (replica, round).  Replica ``k``'s series is
    bit-identical to a solo :class:`RunCollector` on the solo run seeded
    with child ``k`` (asserted by ``tests/test_observability.py``).
    """

    def __init__(
        self,
        view: StructureView,
        replicas: int,
        labels: Optional[Mapping[str, Any]] = None,
        rep_key: str = "rep",
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[MetricSink] = None,
        every: int = 1,
        level_hist: bool = False,
        records: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.view = view
        self.replicas = replicas
        self.labels = dict(labels or {})
        self.rep_key = rep_key
        self.registry = registry
        self.sink = sink
        self.every = every
        self.level_hist = level_hist
        self.records: List[Dict[str, Any]] = (
            records if records is not None else []
        )
        self.peak_level_bytes = 0
        self._round = -1
        self._beep_total_arr = np.zeros((replicas, view.channels), dtype=np.int64)
        # Column stash of the current round's structure observation,
        # aligned to the observed (sorted) replica list.  Records are
        # materialized in one pass in :meth:`observe_beeps`, which also
        # drops the columns of replicas that retired before stepping.
        self._active: Optional[List[int]] = None
        self._active_arr: Optional[npt.NDArray[np.int64]] = None
        self._emit = False
        self._col_i: Optional[npt.NDArray[np.int32]] = None
        self._col_s: Optional[npt.NDArray[np.int32]] = None
        self._col_p: Optional[npt.NDArray[np.int32]] = None
        self._col_legal: Optional[npt.NDArray[np.bool_]] = None
        self._col_hists: Optional[List[List[List[int]]]] = None
        self._col_beeps2: Optional[npt.NDArray[np.int32]] = None
        self._s_disjoint = _mis_disjoint_from_dominated(view)
        self._hist_offset = int(view.floor.min())
        self._hist_span = int(view.ell_max.max()) - self._hist_offset + 1

    @property
    def beep_totals(self) -> List[List[int]]:
        """Per-replica per-channel transmission totals so far."""
        return self._beep_total_arr.tolist()

    # ------------------------------------------------------------------
    def observe_structure(
        self,
        levels: npt.NDArray[np.int64],
        active_idx: npt.NDArray[np.int64],
    ) -> npt.NDArray[np.bool_]:
        """Observe the active replicas' rows; returns their legality.

        ``levels`` is the engine's full ``(R, n)`` matrix; ``active_idx``
        selects the still-running replicas.  The returned boolean vector
        (one entry per active replica, in ``active_idx`` order) equals
        ``BatchedEngine._legal_rows`` on the same rows — the run loop
        uses it for retirement so legality is evaluated exactly once.
        """
        view = self.view
        self._round += 1
        round_index = self._round
        self.peak_level_bytes = max(self.peak_level_bytes, int(levels.nbytes))
        active_arr = np.asarray(active_idx)
        # Skip the fancy-index copy while every replica is still running
        # (the common early rounds) — all downstream uses only read.
        rows = levels if active_arr.size == levels.shape[0] else levels[active_arr]
        blocked = view.hear_rows(rows != view.ell_max)
        in_mis = (rows == view.floor) & ~blocked
        dominated = view.hear_rows(in_mis)
        others_ok = (rows == view.ell_max) & dominated
        legal_rows = np.all(in_mis | others_ok, axis=1)

        self._active = active_arr.tolist()
        self._active_arr = active_arr
        self._emit = round_index % self.every == 0
        if self._emit:
            # Stash columns; records are materialized in observe_beeps()
            # once the stepped replicas (observed minus retired) are
            # known.  Everything is evaluated eagerly — ``rows`` may
            # alias the engine's level matrix, which mutates on step.
            self._col_i = _row_counts(in_mis)
            self._col_s = (
                self._col_i + _row_counts(dominated)
                if self._s_disjoint
                else _row_counts(in_mis | dominated)
            )
            self._col_p = _row_counts(rows <= 0)
            self._col_legal = legal_rows
            if self.level_hist:
                self._col_hists = [
                    _level_histogram(row, self._hist_offset, self._hist_span)
                    for row in rows
                ]
        if view.channels == 2:
            self._col_beeps2 = _row_counts(rows == 0)
        return legal_rows

    def observe_beeps(
        self,
        beep1_rows: npt.NDArray[np.bool_],
        stepped_idx: npt.NDArray[np.int64],
    ) -> None:
        """Complete records for the replicas that were actually stepped.

        Channel-2 transmissions are deterministic given the start-of-round
        levels (``beep2 = (ℓ == 0)``) and were counted during
        :meth:`observe_structure`; only channel 1 needs the step output.
        """
        active, active_arr = self._active, self._active_arr
        if active is None or active_arr is None:
            raise RuntimeError("observe_beeps() without observe_structure()")
        stepped_arr = np.asarray(stepped_idx)
        stepped = stepped_arr.tolist()
        if stepped == active:
            pos: Optional[npt.NDArray[np.int64]] = None
        else:
            # Replicas that retired this round were observed but not
            # stepped; map the stepped subset back to column positions
            # (both index lists are sorted — nonzero() output).
            if active_arr.size == 0:
                raise RuntimeError("observe_beeps() for an unobserved replica")
            pos = np.searchsorted(active_arr, stepped_arr)
            clipped = np.minimum(pos, active_arr.size - 1)
            if not bool(np.array_equal(active_arr[clipped], stepped_arr)):
                raise RuntimeError("observe_beeps() for an unobserved replica")

        counts1 = _row_counts(beep1_rows)
        totals = self._beep_total_arr
        totals[stepped_arr, 0] += counts1
        two_channel = self.view.channels == 2
        if two_channel:
            beeps2 = self._col_beeps2
            counts2 = beeps2 if pos is None else beeps2[pos]
            totals[stepped_arr, 1] += counts2

        if self._emit:
            pick = (lambda col: col) if pos is None else (lambda col: col[pos])
            i_list = pick(self._col_i).tolist()
            s_list = pick(self._col_s).tolist()
            p_list = pick(self._col_p).tolist()
            legal_list = pick(self._col_legal).tolist()
            c1 = counts1.tolist()
            c2 = counts2.tolist() if two_channel else None
            hists = self._col_hists
            if hists is not None and pos is not None:
                hists = [hists[j] for j in pos.tolist()]
            labels = self.labels
            rep_key = self.rep_key
            round_index = self._round
            records = self.records
            sink = self.sink
            channels_state = self.view.channels_state
            for k, replica in enumerate(stepped):
                record: Dict[str, Any] = labels.copy()
                record[rep_key] = replica
                record["round"] = round_index
                record["i_size"] = i_list[k]
                record["s_size"] = s_list[k]
                record["prominent"] = p_list[k]
                record["legal"] = legal_list[k]
                if hists is not None:
                    record["level_hist"] = hists[k]
                record["beeps"] = [c1[k], c2[k]] if two_channel else [c1[k]]
                if channels_state is not None:  # non-perfect channel
                    bound = channels_state[replica]
                    record["dropped"] = bound.last_drops
                    record["spurious"] = bound.last_spurious
                records.append(record)
                if sink is not None:
                    sink.emit(record)
        self._active = None
        self._active_arr = None
        self._emit = False
        self._col_hists = None

    def finalize_replica(self, replica: int, stabilized: bool, rounds: int) -> None:
        """Registry aggregates for one retired replica."""
        if self.registry is None:
            return
        runs, stab, rounds_c, beeps_c, hist, peak = _instruments(
            self.registry, self.view.channels
        )
        runs.inc()
        if stabilized:
            stab.inc()
        rounds_c.inc(rounds)
        for channel_counter, total in zip(
            beeps_c, self._beep_total_arr[replica].tolist()
        ):
            channel_counter.inc(total)
        hist.observe(float(rounds))
        peak.set_max(self.peak_level_bytes)
        channels_state = self.view.channels_state
        if channels_state is not None:  # non-perfect channel adopted
            bound = channels_state[replica]
            self.registry.counter("channel_dropped_beeps_total").inc(
                bound.drops_total
            )
            self.registry.counter("channel_spurious_beeps_total").inc(
                bound.spurious_total
            )

    # ------------------------------------------------------------------
    def series(self, field: str, replica: int) -> List[Any]:
        """One replica's column of the recorded series, in round order."""
        return [
            record[field]
            for record in self.records
            if record[self.rep_key] == replica
        ]
