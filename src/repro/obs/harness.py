"""Glue between the observability layer and the sweep/CLI harnesses.

The sweep executors may run measurements in worker *processes*, so
metric collection has to be split into a picklable worker half and a
merging parent half:

* :class:`SweepRecorder` lives in the worker.  It owns a local
  :class:`MetricsRegistry`, an in-memory record buffer and a
  :class:`PhaseProfiler`, and hands per-run collectors to the
  measurement.  Its :meth:`~SweepRecorder.payload` is a plain picklable
  dict.
* :func:`collect_sweep_metrics` runs in the parent.  It merges the
  worker payloads in submission order (deterministic: config order,
  then repetition order) and writes the requested sink — so JSONL/CSV
  files are written exactly once, by one process, with no lock.

:class:`MetricsOptions` is the user-facing spec both the CLI flags and
:func:`repro.analysis.sweep.run_sweep` accept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..graphs.graph import Graph
from .collectors import BatchedCollector, RunCollector, StructureView
from .profiling import PhaseProfiler
from .registry import MetricsRegistry
from .sinks import SINK_KINDS, CsvSink, JsonlSink, MetricSink

__all__ = [
    "MetricsOptions",
    "SweepMetrics",
    "SweepRecorder",
    "collect_sweep_metrics",
    "collector_for_backend",
]


@dataclass(frozen=True)
class MetricsOptions:
    """How (and whether) to collect per-round metrics.

    Attributes
    ----------
    sink:
        ``"memory"`` (records kept on the result), ``"jsonl"`` or
        ``"csv"`` (records written to ``path``).
    path:
        Output target for the file sinks; ``"-"`` means stdout.
    every:
        Record every k-th round only (structure is still evaluated each
        round; this bounds record volume, not compute).
    level_hist:
        Attach per-round level histograms to the records.
    """

    sink: str = "memory"
    path: Optional[str] = None
    every: int = 1
    level_hist: bool = False

    def __post_init__(self) -> None:
        if self.sink not in SINK_KINDS:
            raise ValueError(
                f"unknown sink {self.sink!r}; choose one of {SINK_KINDS}"
            )
        if self.every < 1:
            raise ValueError("every must be >= 1")

    @classmethod
    def from_cli(
        cls,
        mode: str,
        path: Optional[str] = None,
        every: int = 1,
        level_hist: bool = False,
    ) -> Optional["MetricsOptions"]:
        """Map the ``--metrics`` flag value to options (``off`` → None)."""
        if mode == "off":
            return None
        sink = "memory" if mode == "summary" else mode
        if sink in ("jsonl", "csv") and path is None:
            path = f"metrics.{sink}"
        return cls(sink=sink, path=path, every=every, level_hist=level_hist)


@dataclass
class SweepMetrics:
    """Merged observability output of one sweep."""

    registry: MetricsRegistry
    records: List[Dict[str, Any]]
    profile: Dict[str, Any]
    path: Optional[str] = None
    emitted: int = 0

    def format(self) -> str:
        profiler = PhaseProfiler()
        profiler.merge(self.profile)
        parts = [self.registry.format(), profiler.format()]
        if self.path is not None:
            parts.append(f"wrote {self.emitted} metric records to {self.path}")
        return "\n".join(p for p in parts if p)


class SweepRecorder:
    """Worker-side metric accumulator handed to observed measurements.

    Measurements request one collector per run (or one batched collector
    per repetition block); everything lands in this recorder's local
    registry/buffer, which travels back to the parent as a plain dict.
    """

    def __init__(
        self,
        base_labels: Optional[Mapping[str, Any]] = None,
        every: int = 1,
        level_hist: bool = False,
    ) -> None:
        self.base_labels = dict(base_labels or {})
        self.every = every
        self.level_hist = level_hist
        self.registry = MetricsRegistry()
        self.records: List[Dict[str, Any]] = []
        self.profiler = PhaseProfiler()

    # ------------------------------------------------------------------
    def _labels(self, extra: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        labels = dict(self.base_labels)
        labels.update(extra or {})
        return labels

    def solo_collector(
        self,
        graph: Graph,
        policy: Any,
        two_channel: bool = False,
        extra_labels: Optional[Mapping[str, Any]] = None,
    ) -> RunCollector:
        # Collectors append straight into this recorder's buffer (one
        # list shared across runs) — no per-record sink indirection.
        return RunCollector(
            StructureView.from_policy(graph, policy, two_channel=two_channel),
            labels=self._labels(extra_labels),
            registry=self.registry,
            every=self.every,
            level_hist=self.level_hist,
            records=self.records,
        )

    def batched_collector(
        self,
        graph: Graph,
        policy: Any,
        replicas: int,
        two_channel: bool = False,
        extra_labels: Optional[Mapping[str, Any]] = None,
    ) -> BatchedCollector:
        return BatchedCollector(
            StructureView.from_policy(graph, policy, two_channel=two_channel),
            replicas=replicas,
            labels=self._labels(extra_labels),
            registry=self.registry,
            every=self.every,
            level_hist=self.level_hist,
            records=self.records,
        )

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """The picklable dict the worker returns to the parent."""
        self.profiler.observe_memory(
            int(self.registry.gauge("peak_level_bytes").value)
        )
        return {
            "registry": self.registry.snapshot(),
            "records": self.records,
            "profile": self.profiler.snapshot(),
        }


def collect_sweep_metrics(
    payloads: Sequence[Mapping[str, Any]],
    options: MetricsOptions,
    parent_profile: Optional[PhaseProfiler] = None,
) -> SweepMetrics:
    """Merge worker payloads (in submission order) and write the sink.

    Each payload's records are canonicalized to (rep, round) order before
    concatenation: a batched worker emits rounds interleaved across
    replicas while a serial worker groups by repetition, and this
    re-grouping makes the merged stream identical for every executor
    (payloads themselves already arrive in config × repetition-chunk
    order).  Collectors emit each replica's rounds in increasing order,
    so a stable group-by on the repetition key equals a full
    (rep, round) sort at linear cost.
    """
    registry = MetricsRegistry()
    profiler = PhaseProfiler()
    records: List[Dict[str, Any]] = []
    for payload in payloads:
        registry.merge(payload["registry"])
        profiler.merge(payload["profile"])
        by_rep: Dict[Any, List[Dict[str, Any]]] = {}
        for record in payload["records"]:
            by_rep.setdefault(record.get("rep", 0), []).append(record)
        for rep in sorted(by_rep):
            records.extend(by_rep[rep])
    if parent_profile is not None:
        profiler.merge(parent_profile.snapshot())

    emitted = 0
    path: Optional[str] = None
    if options.sink in ("jsonl", "csv") and options.path is not None:
        sink = (
            JsonlSink(options.path)
            if options.sink == "jsonl"
            else CsvSink(options.path)
        )
        try:
            for record in records:
                sink.emit(record)
            emitted = len(records)
        finally:
            sink.close()
        path = options.path
    return SweepMetrics(
        registry=registry,
        records=records,
        profile=profiler.snapshot(),
        path=path,
        emitted=emitted,
    )


def collector_for_backend(
    engine: str,
    graph: Graph,
    policy: Any,
    variant: str,
    labels: Optional[Mapping[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
    sink: Optional[MetricSink] = None,
    every: int = 1,
    level_hist: bool = False,
) -> Any:
    """The collector shape a registered engine backend expects.

    ``vectorized`` and ``reference`` take a :class:`RunCollector`; the
    ``batched`` backend steps a one-replica block and needs a
    :class:`BatchedCollector`.
    """
    two_channel = variant == "two_channel"
    view = StructureView.from_policy(graph, policy, two_channel=two_channel)
    kwargs = dict(
        labels=labels,
        registry=registry,
        sink=sink,
        every=every,
        level_hist=level_hist,
    )
    if engine == "batched":
        return BatchedCollector(view, replicas=1, **kwargs)
    return RunCollector(view, **kwargs)
