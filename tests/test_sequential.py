"""Tests for the sequential greedy MIS baselines."""

import pytest

from repro.baselines.sequential import (
    id_order_mis,
    max_degree_last_mis,
    min_degree_greedy_mis,
    random_order_mis,
)
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis

from conftest import small_graph_zoo


ALL_BASELINES = [
    ("id_order", lambda g: id_order_mis(g)),
    ("random_order", lambda g: random_order_mis(g, seed=7)),
    ("min_degree", lambda g: min_degree_greedy_mis(g)),
    ("max_degree_last", lambda g: max_degree_last_mis(g)),
]


@pytest.mark.parametrize("alg_name,alg", ALL_BASELINES)
@pytest.mark.parametrize("graph_name,graph", small_graph_zoo())
def test_all_sequential_baselines_produce_mis(alg_name, alg, graph_name, graph):
    mis = alg(graph)
    assert check_mis(graph, mis) is None, f"{alg_name} on {graph_name}"


def test_min_degree_beats_hub_first_on_star():
    g = gen.star(10)
    assert min_degree_greedy_mis(g) == frozenset(range(1, 10))
    assert id_order_mis(g) == frozenset({0})


def test_min_degree_on_empty_and_trivial():
    assert min_degree_greedy_mis(Graph(0)) == frozenset()
    assert min_degree_greedy_mis(Graph(3)) == {0, 1, 2}


def test_max_degree_last_prefers_leaves(star6):
    assert max_degree_last_mis(star6) == frozenset(range(1, 6))


def test_min_degree_at_least_as_large_on_skewed_graphs():
    g = gen.barabasi_albert(120, 3, seed=5)
    assert len(min_degree_greedy_mis(g)) >= len(id_order_mis(g))
