"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.family == "er"
        assert args.variant == "max_degree"
        assert not args.fresh_start

    def test_invalid_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--family", "nope"])

    def test_invalid_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--variant", "nope"])


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--family", "cycle", "--n", "24",
                     "--seed", "1", "--c1", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilized after" in out
        assert "|MIS|" in out

    def test_run_fresh_start(self, capsys):
        code = main(["run", "--family", "path", "--n", "12",
                     "--seed", "2", "--c1", "4", "--fresh-start"])
        assert code == 0

    def test_run_reference_engine(self, capsys):
        code = main(["run", "--family", "path", "--n", "10", "--seed", "3",
                     "--c1", "4", "--engine", "reference"])
        assert code == 0

    def test_run_two_channel(self, capsys):
        code = main(["run", "--family", "er", "--n", "40", "--seed", "4",
                     "--c1", "4", "--variant", "two_channel"])
        assert code == 0

    def test_watch_renders_waterfall(self, capsys):
        code = main(["run", "--family", "cycle", "--n", "16", "--seed", "5",
                     "--c1", "4", "--watch"])
        assert code == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "■" in out


class TestSweepCommand:
    def test_sweep_prints_table_and_fits(self, capsys):
        code = main(["sweep", "--family", "er", "--sizes", "16,32,64",
                     "--reps", "2", "--c1", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilization rounds" in out
        assert "log:" in out

    def test_sweep_empty_sizes(self, capsys):
        assert main(["sweep", "--sizes", ""]) == 2


class TestRecoverCommand:
    @pytest.mark.parametrize(
        "fault", ["random", "bernoulli:0.4", "all_silent", "all_prominent"]
    )
    def test_recover_all_fault_kinds(self, capsys, fault):
        code = main(["recover", "--family", "cycle", "--n", "20",
                     "--seed", "1", "--c1", "4", "--fault", fault])
        assert code == 0
        assert "recovered in" in capsys.readouterr().out

    def test_unknown_fault(self, capsys):
        assert main(["recover", "--n", "10", "--c1", "4",
                     "--fault", "gamma_rays"]) == 2


class TestAppCommands:
    def test_color(self, capsys):
        assert main(["color", "--family", "cycle", "--n", "20",
                     "--seed", "1", "--c1", "4"]) == 0
        out = capsys.readouterr().out
        assert "proper coloring" in out and "class sizes" in out

    def test_match(self, capsys):
        assert main(["match", "--family", "grid", "--n", "16",
                     "--seed", "2", "--c1", "4"]) == 0
        out = capsys.readouterr().out
        assert "maximal matching" in out


class TestOtherCommands:
    def test_figure1(self, capsys):
        assert main(["figure1", "--ell-max", "5"]) == 0
        out = capsys.readouterr().out
        assert "p(ℓ)" in out
        assert "0.062500" in out  # ℓ = 4 competition row
        assert "0.000000" in out  # ℓ = ℓmax silent row

    def test_info(self, capsys):
        assert main(["info", "--family", "grid", "--n", "25"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "components" in out
