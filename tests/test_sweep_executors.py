"""Sweep executors: byte-identical results on every execution strategy.

Pins two contracts of :mod:`repro.analysis.sweep`:

* the documented seed-derivation scheme (``root.spawn`` per config, then
  per repetition) — golden values so it cannot drift silently, and
* executor equivalence — ``serial`` / ``process`` / ``batched`` and any
  ``jobs`` count produce cell-for-cell identical samples.
"""

import numpy as np
import pytest

from repro.analysis.measurements import StabilizationRounds
from repro.analysis.sweep import (
    EXECUTORS,
    SweepPool,
    SweepWorkerError,
    run_sweep,
    spawn_sweep_seeds,
    supports_batch,
)

CONFIGS = [{"family": "er", "n": 24}, {"family": "cycle", "n": 20}]
MEASURE = StabilizationRounds(variant="max_degree")


def _first_uniform(config, rng):
    """Minimal measurement: the first uniform draw, scaled to an int."""
    return float(np.floor(rng.random() * 1e6))


# ----------------------------------------------------------------------
# Seed derivation (satellite: the once-unused SeedSequence root)
# ----------------------------------------------------------------------
def test_seed_tree_shape_and_spawn_keys():
    seeds = spawn_sweep_seeds(7, 2, 3)
    assert len(seeds) == 2 and all(len(row) == 3 for row in seeds)
    keys = [[child.spawn_key for child in row] for row in seeds]
    assert keys == [[(0, 0), (0, 1), (0, 2)], [(1, 0), (1, 1), (1, 2)]]
    assert all(c.entropy == 7 for row in seeds for c in row)


def test_seed_tree_golden_values():
    """First 32-bit draw of every grandchild generator, pinned."""
    seeds = spawn_sweep_seeds(7, 2, 3)
    draws = [
        [int(np.random.default_rng(c).integers(2**32)) for c in row]
        for row in seeds
    ]
    assert draws == [
        [3643784255, 2687721581, 3453924699],
        [2986931408, 3069037426, 2567386825],
    ]


def test_run_sweep_golden_samples():
    """End-to-end golden values through the serial executor."""
    result = run_sweep(
        [{"k": 0}, {"k": 1}], _first_uniform, repetitions=3, master_seed=7
    )
    assert [list(c.samples) for c in result.cells] == [
        [392107.0, 872908.0, 309797.0],
        [589807.0, 481523.0, 478895.0],
    ]


def test_run_sweep_golden_stabilization_samples():
    """The real measurement on a fixed graph — pins engine + seed tree."""
    result = run_sweep(
        [{"family": "er", "n": 32}], MEASURE, repetitions=4, master_seed=42,
        executor="serial",
    )
    assert list(result.cells[0].samples) == [35.0, 43.0, 37.0, 39.0]


def test_distinct_master_seeds_differ():
    a = run_sweep(CONFIGS, _first_uniform, repetitions=3, master_seed=0)
    b = run_sweep(CONFIGS, _first_uniform, repetitions=3, master_seed=1)
    assert [c.samples for c in a.cells] != [c.samples for c in b.cells]


# ----------------------------------------------------------------------
# Executor equivalence
# ----------------------------------------------------------------------
def _samples(result):
    return [list(cell.samples) for cell in result.cells]


def test_batched_equals_serial():
    serial = run_sweep(
        CONFIGS, MEASURE, repetitions=5, master_seed=3, executor="serial"
    )
    batched = run_sweep(
        CONFIGS, MEASURE, repetitions=5, master_seed=3, executor="batched"
    )
    assert _samples(serial) == _samples(batched)


def test_process_jobs4_equals_serial_jobs1():
    serial = run_sweep(
        CONFIGS, MEASURE, repetitions=6, master_seed=9, jobs=1,
        executor="serial",
    )
    parallel = run_sweep(
        CONFIGS, MEASURE, repetitions=6, master_seed=9, jobs=4,
        executor="process",
    )
    assert _samples(serial) == _samples(parallel)


def test_batched_parallel_equals_batched_serial():
    one = run_sweep(
        CONFIGS, MEASURE, repetitions=4, master_seed=5, jobs=1,
        executor="batched",
    )
    many = run_sweep(
        CONFIGS, MEASURE, repetitions=4, master_seed=5, jobs=3,
        executor="batched",
    )
    assert _samples(one) == _samples(many)


def test_auto_resolution_prefers_batched():
    auto = run_sweep(CONFIGS, MEASURE, repetitions=3, master_seed=2)
    explicit = run_sweep(
        CONFIGS, MEASURE, repetitions=3, master_seed=2, executor="batched"
    )
    assert _samples(auto) == _samples(explicit)


# ----------------------------------------------------------------------
# Knob validation
# ----------------------------------------------------------------------
def test_supports_batch():
    assert supports_batch(MEASURE)
    assert not supports_batch(_first_uniform)


def test_batched_requires_measure_batch():
    with pytest.raises(ValueError, match="measure_batch"):
        run_sweep(
            CONFIGS, _first_uniform, repetitions=2, executor="batched"
        )


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="unknown executor"):
        run_sweep(CONFIGS, _first_uniform, repetitions=2, executor="gpu")
    assert set(EXECUTORS) == {"auto", "serial", "process", "batched"}


def test_invalid_jobs_and_repetitions():
    with pytest.raises(ValueError):
        run_sweep(CONFIGS, _first_uniform, repetitions=0)
    with pytest.raises(ValueError):
        run_sweep(CONFIGS, _first_uniform, repetitions=2, jobs=0)


# ----------------------------------------------------------------------
# Worker-crash recovery (satellite: the runtime twin of RPR704)
# ----------------------------------------------------------------------
def _crash_on_flag(config, rng):
    """Module-level (picklable) measurement that kills its own worker."""
    import os

    if config.get("crash"):
        os._exit(13)
    return float(rng.random())


def test_worker_crash_surfaces_named_error_and_cleans_up():
    """os._exit in a worker → SweepWorkerError, pool closed, no leak."""
    from repro.analysis.measurements import graph_for_config
    from repro.core.kernels.shm import leaked_segments

    graphs = [graph_for_config(config) for config in CONFIGS]
    before = set(leaked_segments())
    with SweepPool(jobs=2, graphs=graphs) as pool:
        assert [n for n in leaked_segments() if n not in before]
        with pytest.raises(SweepWorkerError, match="died mid-task"):
            run_sweep(
                [{"crash": 1}],
                _crash_on_flag,
                repetitions=2,
                master_seed=7,
                executor="process",
                pool=pool,
            )
    # The context exit shut the broken pool down and unlinked every
    # segment this test exported; close() is idempotent after the crash.
    assert [n for n in leaked_segments() if n not in before] == []
    pool.close()
    assert [n for n in leaked_segments() if n not in before] == []
