"""Tests for the empirical lemma verifiers (repro.core.lemmas)."""

import pytest

from repro.core.knowledge import max_degree_policy, own_degree_policy, uniform_policy
from repro.core.lemmas import (
    estimate_platinum_tail,
    verify_lemma31,
    verify_lemma34,
    verify_lemma36_uniform,
)
from repro.graphs import generators as gen


GRAPHS = [
    ("er", lambda: gen.erdos_renyi_mean_degree(50, 5.0, seed=1)),
    ("regular", lambda: gen.random_regular(40, 4, seed=2)),
    ("star", lambda: gen.star(30)),
    ("cycle", lambda: gen.cycle(36)),
    ("ba", lambda: gen.barabasi_albert(45, 2, seed=3)),
]


class TestLemma31:
    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_invariant_holds_everywhere(self, name, builder):
        graph = builder()
        report = verify_lemma31(graph, max_degree_policy(graph, c1=4), seed=5)
        assert report.holds, (name, report)
        assert report.first_violation_round is None

    def test_heterogeneous_policy(self):
        graph = gen.barabasi_albert(45, 2, seed=3)
        report = verify_lemma31(graph, own_degree_policy(graph, c1=4), seed=6)
        assert report.holds

    def test_horizon_reported(self):
        graph = gen.cycle(10)
        policy = uniform_policy(graph, 7)
        report = verify_lemma31(graph, policy, seed=7, extra_rounds=50)
        assert report.horizon == 7
        assert report.rounds_checked == 50


class TestLemma34:
    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_solo_beep_certificate(self, name, builder):
        graph = builder()
        report = verify_lemma34(graph, max_degree_policy(graph, c1=4), seed=8)
        assert report.holds, (name, report)
        assert report.platinum_events_checked > 0

    def test_multiple_seeds(self):
        graph = gen.erdos_renyi_mean_degree(40, 5.0, seed=9)
        policy = max_degree_policy(graph, c1=4)
        for seed in range(5):
            assert verify_lemma34(graph, policy, seed=seed, rounds=150).holds


class TestPlatinumTail:
    def test_exponential_tail_positive_rate(self):
        graph = gen.erdos_renyi_mean_degree(60, 6.0, seed=10)
        policy = max_degree_policy(graph, c1=4)
        report = estimate_platinum_tail(graph, policy, seed=11, runs=20)
        assert len(report.waiting_times) == 20
        assert all(w >= 0 for w in report.waiting_times)
        # Waits are short and concentrated — far better than e^-30.
        assert report.mean_wait < 50

    def test_waits_recorded_per_run(self):
        graph = gen.cycle(20)
        policy = max_degree_policy(graph, c1=4)
        report = estimate_platinum_tail(graph, policy, seed=12, runs=5)
        assert len(report.waiting_times) == 5


class TestLemma36Uniform:
    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_platinum_leads_to_stabilization(self, name, builder):
        graph = builder()
        policy = max_degree_policy(graph, c1=4)  # uniform by construction
        report = verify_lemma36_uniform(graph, policy, seed=13)
        assert report.holds, (name, report)
        assert report.events_checked > 0
        assert report.worst_lag <= 2 * policy.max_ell_max + 2

    def test_requires_uniform_policy(self):
        graph = gen.barabasi_albert(30, 2, seed=14)
        with pytest.raises(ValueError, match="uniform"):
            verify_lemma36_uniform(graph, own_degree_policy(graph, c1=4))
