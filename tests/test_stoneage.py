"""Tests for the Stone Age substrate, the beeping adapter, and CountingMIS."""

import numpy as np
import pytest

from repro.beeping.algorithm import LocalKnowledge, NodeOutput
from repro.beeping.network import BeepingNetwork
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import max_degree_policy
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis
from repro.stoneage import (
    BeepingOnStoneAge,
    CountingMIS,
    StoneAgeMachine,
    StoneAgeNetwork,
    run_stone_age_until_stable,
)


class TwoLetterProbe(StoneAgeMachine):
    """Test machine: everyone alternates letters; state counts observations."""

    alphabet = ("a", "b")

    def fresh_state(self, knowledge):
        return {"round": 0, "seen_a": 0, "seen_b": 0}

    def random_state(self, knowledge, rng):
        return self.fresh_state(knowledge)

    def emit(self, state, knowledge, u):
        return "a" if state["round"] % 2 == 0 else "b"

    def transition(self, state, emitted, observed, knowledge, u):
        return {
            "round": state["round"] + 1,
            "seen_a": state["seen_a"] + observed["a"],
            "seen_b": state["seen_b"] + observed["b"],
        }

    def output(self, state, knowledge):
        return NodeOutput.UNDECIDED


def knowledge_for(graph):
    return [LocalKnowledge() for _ in graph.vertices()]


class TestStoneAgeEngine:
    def test_counting_clipped_at_bound(self, star6):
        for bound in (1, 2, 4):
            network = StoneAgeNetwork(
                star6, TwoLetterProbe(), knowledge_for(star6), seed=0, bound=bound
            )
            record = network.step()
            # All 5 leaves emitted 'a'; the hub observes min(5, bound).
            assert record.observed[0]["a"] == min(5, bound)
            assert record.observed[0]["b"] == 0
            # Leaves observe the hub's single 'a'.
            assert record.observed[1]["a"] == 1

    def test_own_emission_not_observed(self):
        g = Graph(1)
        network = StoneAgeNetwork(g, TwoLetterProbe(), knowledge_for(g), seed=0)
        record = network.step()
        assert record.observed[0] == {"a": 0, "b": 0}

    def test_alphabet_enforced(self, path4):
        class Rogue(TwoLetterProbe):
            def emit(self, state, knowledge, u):
                return "z"

        network = StoneAgeNetwork(path4, Rogue(), knowledge_for(path4), seed=0)
        with pytest.raises(ValueError, match="alphabet"):
            network.step()

    def test_validation(self, path4):
        with pytest.raises(ValueError, match="bound"):
            StoneAgeNetwork(path4, TwoLetterProbe(), knowledge_for(path4), bound=0)
        with pytest.raises(ValueError, match="knowledge"):
            StoneAgeNetwork(path4, TwoLetterProbe(), [LocalKnowledge()])

        class NoAlphabet(TwoLetterProbe):
            alphabet = ()

        with pytest.raises(ValueError, match="alphabet"):
            StoneAgeNetwork(path4, NoAlphabet(), knowledge_for(path4))

    def test_letter_count_helper(self, path4):
        network = StoneAgeNetwork(path4, TwoLetterProbe(), knowledge_for(path4), seed=0)
        record = network.step()
        assert record.letter_count("a") == 4
        assert record.letter_count("b") == 0


class TestBeepingAdapter:
    def test_rejects_multichannel(self):
        from repro.core.algorithm_two_channel import TwoChannelMIS

        with pytest.raises(ValueError, match="single-channel"):
            BeepingOnStoneAge(TwoChannelMIS())

    def test_bit_identical_to_native_beeping_engine(self):
        """Stone Age (b=1) ≡ beeping, executable form."""
        graph = gen.erdos_renyi_mean_degree(40, 5.0, seed=2)
        policy = max_degree_policy(graph, c1=4)
        knowledge = policy.knowledge(graph)
        seed = 55
        init = [
            int(x)
            for x in np.random.default_rng(8).integers(
                -policy.ell_max[0], policy.ell_max[0] + 1, graph.num_vertices
            )
        ]

        native = BeepingNetwork(
            graph, SelfStabilizingMIS(), knowledge, seed=seed, initial_states=init
        )
        adapted = StoneAgeNetwork(
            graph,
            BeepingOnStoneAge(SelfStabilizingMIS()),
            knowledge,
            seed=seed,
            initial_states=list(init),
            bound=1,
        )
        for round_index in range(150):
            native.step()
            adapted.step()
            assert native.states == adapted.states, f"round {round_index}"
        assert native.is_legal() == adapted.is_legal()

    def test_adapter_stabilizes_to_valid_mis(self):
        graph = gen.random_regular(30, 4, seed=3)
        policy = max_degree_policy(graph, c1=4)
        network = StoneAgeNetwork(
            graph,
            BeepingOnStoneAge(SelfStabilizingMIS()),
            policy.knowledge(graph),
            seed=4,
        )
        network.randomize_states()
        ok, rounds, mis = run_stone_age_until_stable(network, max_rounds=20_000)
        assert ok
        assert check_mis(graph, mis) is None


class TestCountingMIS:
    def test_b1_identical_to_algorithm1(self):
        """With bound 1 the counting machine *is* Algorithm 1."""
        graph = gen.erdos_renyi_mean_degree(40, 5.0, seed=5)
        policy = max_degree_policy(graph, c1=4)
        knowledge = policy.knowledge(graph)
        seed = 66
        native = BeepingNetwork(graph, SelfStabilizingMIS(), knowledge, seed=seed)
        counting = StoneAgeNetwork(
            graph, CountingMIS(), knowledge, seed=seed, bound=1
        )
        for _ in range(150):
            native.step()
            counting.step()
            assert native.states == counting.states

    @pytest.mark.parametrize("bound", [1, 2, 4])
    def test_stabilizes_to_valid_mis_any_bound(self, bound):
        graph = gen.erdos_renyi_mean_degree(50, 6.0, seed=6)
        policy = max_degree_policy(graph, c1=4)
        network = StoneAgeNetwork(
            graph, CountingMIS(), policy.knowledge(graph), seed=7, bound=bound
        )
        network.randomize_states()
        ok, rounds, mis = run_stone_age_until_stable(network, max_rounds=20_000)
        assert ok, f"bound={bound}"
        assert check_mis(graph, mis) is None

    def test_stable_configurations_identical_to_algorithm1(self):
        """b changes the transient, not the fixed points."""
        graph = gen.path(6)
        policy = max_degree_policy(graph, c1=4)
        machine = CountingMIS()
        knowledge = policy.knowledge(graph)
        e = policy.ell_max[0]
        legal = [-e, e, -e, e, -e, e]
        assert machine.is_legal_configuration(graph, legal, knowledge)
        network = StoneAgeNetwork(
            graph, machine, knowledge, seed=8, bound=4, initial_states=legal
        )
        for _ in range(20):
            network.step()
        assert list(network.states) == legal

    def test_requires_ell_max(self):
        with pytest.raises(ValueError, match="ell_max"):
            CountingMIS().fresh_state(LocalKnowledge())
