"""Fused-round-kernel tier: registry, byte-identity, and fallbacks.

The tier's contract (docs/performance.md, "Fused round tier"): opting
in via ``round_kernel=`` is a pure performance knob — on every eligible
configuration the fused loop reproduces the per-step loop *byte for
byte*, including the position of every RNG stream afterwards, and on
every ineligible configuration the engine silently runs the historical
step loop.  These tests pin the registry surface, the identity on all
three algorithms across both always-available backends, the numba
gate, the batched draw-cursor fallback, and survival across a
topology ``rebind``.
"""

import numpy as np
import pytest

from repro.core.engines.batched import BatchedEngine
from repro.core.engines.constant_state import simulate_constant_state
from repro.core.engines.single import SingleChannelEngine
from repro.core.engines.two_channel import TwoChannelEngine
from repro.core.kernels import (
    BlockDraws,
    RoundKernelUnavailable,
    available_round_kernels,
    get_round_kernel,
    resolve_round_kernel_name,
    structure_for,
)
from repro.core.kernels.round import numba_available
from repro.core.runner import compute_mis, policy_for_variant
from repro.graphs.generators import by_name

BACKENDS = ("fused_numpy", "fused_packed")


def _graph(n=48, seed=0):
    return by_name("er", n, seed=seed)


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------
def test_auto_resolves_to_packed():
    assert resolve_round_kernel_name("auto") == "fused_packed"


@pytest.mark.parametrize(
    "alias, canonical",
    [("numpy", "fused_numpy"), ("packed", "fused_packed")],
)
def test_aliases_resolve(alias, canonical):
    assert resolve_round_kernel_name(alias) == canonical
    assert resolve_round_kernel_name(canonical) == canonical


def test_unknown_name_lists_choices():
    with pytest.raises(ValueError, match="auto"):
        resolve_round_kernel_name("fused_simd")


def test_always_available_backends_listed():
    names = available_round_kernels()
    assert "fused_numpy" in names
    assert "fused_packed" in names


def test_numba_backend_is_registry_gated():
    if numba_available():  # pragma: no cover - numba not in CI image
        structure = structure_for(_graph())
        kern = get_round_kernel(
            "fused_numba", structure, algorithm="single", ell_max=6
        )
        assert kern is not None
        return
    # Without numba the name is hidden from the availability listing and
    # construction fails with the dedicated, catchable error.
    assert "fused_numba" not in available_round_kernels()
    with pytest.raises(RoundKernelUnavailable, match="numba"):
        get_round_kernel(
            "fused_numba", structure_for(_graph()), algorithm="single", ell_max=6
        )


def test_reference_engine_rejects_round_kernel():
    with pytest.raises(ValueError, match="round-kernel"):
        compute_mis(
            _graph(12), engine="reference", seed=0, round_kernel="fused_packed"
        )


# ----------------------------------------------------------------------
# Byte-identity on eligible configurations (incl. RNG stream position)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "engine_cls, variant",
    [(SingleChannelEngine, "max_degree"), (TwoChannelEngine, "two_channel")],
)
def test_solo_fused_run_is_byte_identical(engine_cls, variant, backend):
    graph = _graph()
    policy = policy_for_variant(graph, variant)
    results = {}
    engines = {}
    for key, extra in (("step", {}), ("fused", {"round_kernel": backend})):
        engine = engine_cls(graph, policy, seed=13, **extra)
        engine.randomize_levels()
        engines[key] = engine
        results[key] = engine.until_stable(max_rounds=50_000)
    assert results["fused"].rounds == results["step"].rounds
    assert results["fused"].mis == results["step"].mis
    assert results["fused"].final_levels.dtype == np.int64
    np.testing.assert_array_equal(
        results["fused"].final_levels, results["step"].final_levels
    )
    np.testing.assert_array_equal(
        engines["fused"].levels, engines["step"].levels
    )
    # Stream-position identity: the fused run consumed exactly the
    # draws the step loop would have, so the generators now agree.
    np.testing.assert_array_equal(
        engines["fused"].rng.random(4), engines["step"].rng.random(4)
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("check_every", (1, 7))
def test_solo_fused_honors_check_cadence(backend, check_every):
    graph = _graph(40, seed=3)
    policy = policy_for_variant(graph, "max_degree")
    results = {}
    for key, extra in (("step", {}), ("fused", {"round_kernel": backend})):
        engine = SingleChannelEngine(graph, policy, seed=5, **extra)
        engine.randomize_levels()
        results[key] = engine.until_stable(
            max_rounds=50_000, check_every=check_every
        )
    assert results["fused"].rounds == results["step"].rounds
    assert results["fused"].mis == results["step"].mis


@pytest.mark.parametrize("backend", BACKENDS)
def test_constant_state_fused_run_is_byte_identical(backend):
    graph = _graph()
    step = simulate_constant_state(graph, seed=8, arbitrary_start=True)
    fused = simulate_constant_state(
        graph, seed=8, arbitrary_start=True, round_kernel=backend
    )
    assert fused.rounds == step.rounds
    assert fused.mis == step.mis
    np.testing.assert_array_equal(fused.final_levels, step.final_levels)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ("single", "two_channel"))
def test_batched_fused_run_is_byte_identical(backend, algorithm):
    graph = _graph(40, seed=2)
    variant = "two_channel" if algorithm == "two_channel" else "max_degree"
    policy = policy_for_variant(graph, variant)
    runs = {}
    for key, extra in (("step", {}), ("fused", {"round_kernel": backend})):
        engine = BatchedEngine(
            graph, policy, replicas=5, seed=17, algorithm=algorithm, **extra
        )
        engine.randomize_levels()
        runs[key] = engine.run(max_rounds=50_000)
    assert [r.rounds for r in runs["fused"]] == [r.rounds for r in runs["step"]]
    for fused, step in zip(runs["fused"], runs["step"]):
        assert fused.mis == step.mis
        np.testing.assert_array_equal(fused.final_levels, step.final_levels)


def test_solo_fused_matches_via_compute_mis():
    graph = _graph()
    for variant in ("max_degree", "own_degree", "two_channel"):
        default = compute_mis(graph, variant=variant, seed=23, arbitrary_start=True)
        fused = compute_mis(
            graph, variant=variant, seed=23, arbitrary_start=True,
            round_kernel="auto",
        )
        assert fused.rounds == default.rounds
        assert fused.mis == default.mis


# ----------------------------------------------------------------------
# Batched draw-cursor fallback and topology rebind
# ----------------------------------------------------------------------
def test_batched_misaligned_cursors_fall_back_byte_identically():
    graph = _graph(36, seed=4)
    policy = policy_for_variant(graph, "max_degree")
    engines = {}
    for key, extra in (("step", {}), ("fused", {"round_kernel": "fused_packed"})):
        engine = BatchedEngine(graph, policy, replicas=4, seed=9, **extra)
        engine.randomize_levels()
        # Step replicas 1..3 a few rounds while replica 0 sits out: its
        # pre-draw cursor stops advancing, so the block cursors diverge.
        active = np.array([False, True, True, True])
        active_idx = np.nonzero(active)[0]
        for _ in range(3):
            engine.step(active, active_idx=active_idx)
        engines[key] = engine
    fused = engines["fused"]
    draws = BlockDraws(fused._blocks, fused._cursor, fused._draw_fns)
    assert not draws.aligned()  # the fused precondition really is violated
    runs = {key: engine.run(max_rounds=50_000) for key, engine in engines.items()}
    assert [r.rounds for r in runs["fused"]] == [r.rounds for r in runs["step"]]
    for fused_r, step_r in zip(runs["fused"], runs["step"]):
        np.testing.assert_array_equal(fused_r.final_levels, step_r.final_levels)


def test_solo_fused_survives_rebind():
    graph = _graph(44, seed=6)
    patched = _graph(44, seed=7)
    policy = policy_for_variant(graph, "max_degree")
    results = {}
    for key, extra in (("step", {}), ("fused", {"round_kernel": "fused_packed"})):
        engine = SingleChannelEngine(graph, policy, seed=31, **extra)
        engine.randomize_levels()
        engine.until_stable(max_rounds=50_000)
        engine.rebind(structure_for(patched))
        results[key] = engine.until_stable(max_rounds=50_000)
    assert results["fused"].rounds == results["step"].rounds
    assert results["fused"].mis == results["step"].mis
    np.testing.assert_array_equal(
        results["fused"].final_levels, results["step"].final_levels
    )
