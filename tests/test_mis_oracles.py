"""Unit tests for the MIS ground-truth oracles."""

import itertools

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import (
    check_mis,
    greedy_mis,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    mis_size_bounds,
    random_priority_mis,
)


def brute_force_is_mis(graph: Graph, candidate) -> bool:
    """Definition-level MIS check by explicit quantification (tiny n)."""
    members = set(candidate)
    independent = all(
        not (u in members and v in members) for u, v in graph.edges
    )
    maximal = all(
        v in members or any(u in members for u in graph.neighbors(v))
        for v in graph.vertices()
    )
    return independent and maximal


class TestValidators:
    def test_independent(self, path4):
        assert is_independent_set(path4, {0, 2})
        assert not is_independent_set(path4, {0, 1})
        assert is_independent_set(path4, set())

    def test_dominating(self, path4):
        assert is_dominating_set(path4, {1, 3})
        assert not is_dominating_set(path4, {0})

    def test_mis_on_path(self, path4):
        assert is_maximal_independent_set(path4, {0, 2})
        assert is_maximal_independent_set(path4, {1, 3})
        assert is_maximal_independent_set(path4, {0, 3})
        assert not is_maximal_independent_set(path4, {0})  # not maximal
        assert not is_maximal_independent_set(path4, {0, 1, 3})  # not indep

    def test_mis_on_empty_graph(self):
        g = Graph(3)
        assert is_maximal_independent_set(g, {0, 1, 2})
        assert not is_maximal_independent_set(g, {0, 1})

    def test_mis_empty_set_on_null_graph(self):
        assert is_maximal_independent_set(Graph(0), set())

    def test_star_mis_variants(self, star6):
        assert is_maximal_independent_set(star6, {0})
        assert is_maximal_independent_set(star6, {1, 2, 3, 4, 5})
        assert not is_maximal_independent_set(star6, {1})

    def test_validators_agree_with_brute_force(self, petersen):
        # Check every subset of a fixed 5-vertex subregion against the
        # definition (the rest of the graph constrains maximality).
        for size in range(4):
            for subset in itertools.combinations(range(10), size):
                assert is_maximal_independent_set(
                    petersen, subset
                ) == brute_force_is_mis(petersen, subset)


class TestCheckMis:
    def test_valid_returns_none(self, path4):
        assert check_mis(path4, {1, 3}) is None

    def test_independence_witness(self, triangle):
        violation = check_mis(triangle, {0, 1})
        assert violation is not None
        assert violation.conflicting_edge == (0, 1)
        assert "independence" in violation.describe()

    def test_maximality_witness(self, path4):
        violation = check_mis(path4, {0})
        assert violation is not None
        assert violation.undominated_vertex in (2, 3)
        assert "maximality" in violation.describe()

    def test_independence_preferred_over_maximality(self):
        g = gen.path(5)
        violation = check_mis(g, {0, 1})  # both violations present
        assert violation.conflicting_edge == (0, 1)


class TestGreedy:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: gen.path(9),
            lambda: gen.cycle(10),
            lambda: gen.star(8),
            lambda: gen.complete(6),
            lambda: gen.grid_2d(4, 4),
            lambda: gen.erdos_renyi_mean_degree(40, 5.0, seed=1),
            lambda: Graph(5),
        ],
    )
    def test_greedy_produces_mis(self, builder):
        g = builder()
        assert check_mis(g, greedy_mis(g)) is None

    def test_greedy_id_order_deterministic(self, er_graph):
        assert greedy_mis(er_graph) == greedy_mis(er_graph)

    def test_greedy_custom_order(self, star6):
        # Scanning the hub first yields {0}; leaves first yields all leaves.
        assert greedy_mis(star6, [0, 1, 2, 3, 4, 5]) == {0}
        assert greedy_mis(star6, [1, 2, 3, 4, 5, 0]) == {1, 2, 3, 4, 5}

    def test_random_priority_mis_valid_and_seeded(self, er_graph):
        a = random_priority_mis(er_graph, seed=5)
        b = random_priority_mis(er_graph, seed=5)
        assert a == b
        assert check_mis(er_graph, a) is None


class TestIndependenceNumber:
    def test_known_values(self, petersen):
        from repro.graphs.mis import maximum_independent_set_size as alpha

        assert alpha(gen.cycle(5)) == 2
        assert alpha(gen.cycle(6)) == 3
        assert alpha(gen.complete(7)) == 1
        assert alpha(gen.star(9)) == 8
        assert alpha(gen.complete_bipartite(3, 5)) == 5
        assert alpha(petersen) == 4
        assert alpha(Graph(6)) == 6
        assert alpha(Graph(0)) == 0

    def test_alpha_dominates_every_mis(self):
        from repro.graphs.mis import maximum_independent_set_size as alpha

        for seed in range(5):
            g = gen.erdos_renyi_mean_degree(25, 4.0, seed=seed)
            a = alpha(g)
            assert len(greedy_mis(g)) <= a
            assert len(random_priority_mis(g, seed=seed)) <= a

    def test_alpha_matches_brute_force_on_tiny_graphs(self):
        from repro.graphs.mis import maximum_independent_set_size as alpha
        from repro.graphs.mis import is_independent_set

        for seed in range(4):
            g = gen.erdos_renyi(9, 0.3, seed=seed)
            brute = max(
                sum(1 for v in range(9) if bits & (1 << v))
                for bits in range(1 << 9)
                if is_independent_set(
                    g, {v for v in range(9) if bits & (1 << v)}
                )
            )
            assert alpha(g) == brute

    def test_size_guard(self):
        from repro.graphs.mis import maximum_independent_set_size as alpha

        with pytest.raises(ValueError, match="limited"):
            alpha(gen.path(41))
        assert alpha(gen.path(41), max_vertices=41) == 21


class TestBounds:
    def test_bounds_bracket_greedy(self, er_graph):
        lower, upper = mis_size_bounds(er_graph)
        size = len(greedy_mis(er_graph))
        assert lower <= size <= upper

    def test_bounds_empty_graph(self):
        assert mis_size_bounds(Graph(0)) == (0, 0)

    def test_bounds_edgeless(self):
        assert mis_size_bounds(Graph(4)) == (4, 4)

    def test_bounds_complete(self):
        lower, upper = mis_size_bounds(gen.complete(7))
        assert lower == 1
