"""Tests for the adversarial wake-up model."""

import numpy as np
import pytest

from repro.beeping.network import BeepingNetwork
from repro.beeping.wakeup import WakeupSchedule, run_with_wakeups
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import max_degree_policy
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis


def make_network(graph, seed=0, c1=4):
    policy = max_degree_policy(graph, c1=c1)
    return BeepingNetwork(
        graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=seed
    )


class TestDormantSemantics:
    def test_dormant_vertex_is_silent_deaf_and_frozen(self):
        g = Graph(2, [(0, 1)])
        network = make_network(g)
        network.set_states([0, 1])  # vertex 0 prominent: would beep surely
        network.set_awake(0, False)
        record = network.step()
        # Dormant vertex 0: no transmission, silence received, state frozen.
        assert record.sent[0] == (False,)
        assert record.heard[0] == (False,)
        assert network.states[0] == 0
        # Vertex 1 heard nothing (its only neighbor is dormant).
        assert record.heard[1] == (False,)

    def test_awake_flags_api(self, path4):
        network = make_network(path4)
        assert network.all_awake()
        network.set_all_awake(False)
        assert network.awake == (False, False, False, False)
        network.set_awake(2)
        assert network.awake[2] and not network.awake[1]

    def test_all_dormant_network_is_static(self, er_graph):
        network = make_network(er_graph, seed=1)
        before = network.states
        network.set_all_awake(False)
        network.run(10)
        assert network.states == before


class TestSchedules:
    def test_simultaneous(self):
        schedule = WakeupSchedule.simultaneous(5)
        assert schedule.last_wake_round == 0
        assert schedule.awake_at(0) == [True] * 5

    def test_staggered(self):
        schedule = WakeupSchedule.staggered(4, gap=3)
        assert schedule.wake_round == (0, 3, 6, 9)
        assert schedule.awake_at(5) == [True, True, False, False]

    def test_staggered_gap_validated(self):
        with pytest.raises(ValueError):
            WakeupSchedule.staggered(4, gap=0)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            WakeupSchedule(wake_round=(0, -1))

    def test_frontier_follows_bfs(self):
        g = gen.path(5)
        schedule = WakeupSchedule.frontier(g, source=0, gap=2)
        assert schedule.wake_round == (0, 2, 4, 6, 8)

    def test_frontier_handles_disconnected(self):
        g = Graph(3, [(0, 1)])
        schedule = WakeupSchedule.frontier(g, source=0)
        assert schedule.wake_round[2] == schedule.last_wake_round

    def test_high_degree_last(self, star6):
        schedule = WakeupSchedule.high_degree_last(star6)
        # The hub (degree 5) wakes last.
        assert schedule.wake_round[0] == schedule.last_wake_round

    def test_random_seeded(self):
        a = WakeupSchedule.random(10, horizon=20, seed=1)
        b = WakeupSchedule.random(10, horizon=20, seed=1)
        assert a == b
        assert all(0 <= r <= 20 for r in a.wake_round)


class TestRunWithWakeups:
    @pytest.mark.parametrize(
        "make_schedule",
        [
            lambda g: WakeupSchedule.simultaneous(g.num_vertices),
            lambda g: WakeupSchedule.staggered(g.num_vertices, gap=1),
            lambda g: WakeupSchedule.frontier(g, source=0, gap=2),
            lambda g: WakeupSchedule.high_degree_last(g, gap=1),
            lambda g: WakeupSchedule.random(g.num_vertices, horizon=50, seed=4),
        ],
        ids=["simultaneous", "staggered", "frontier", "degree_last", "random"],
    )
    def test_stabilizes_under_any_schedule(self, make_schedule):
        graph = gen.erdos_renyi_mean_degree(60, 5.0, seed=2)
        schedule = make_schedule(graph)
        network = make_network(graph, seed=7)
        result = run_with_wakeups(network, schedule, max_rounds_after_wakeup=20_000)
        assert result.stabilized
        assert check_mis(graph, result.mis) is None
        assert result.total_rounds >= schedule.last_wake_round

    def test_schedule_size_validated(self, path4):
        network = make_network(path4)
        with pytest.raises(ValueError):
            run_with_wakeups(
                network, WakeupSchedule.simultaneous(3), max_rounds_after_wakeup=10
            )

    def test_post_wakeup_time_is_schedule_independent(self):
        """The headline claim: rounds *after the last wake-up* land in
        the same band for the serialized adversary as for simultaneous
        start (means within 3x over 5 seeds)."""
        graph = gen.random_regular(60, 4, seed=3)

        def mean_rounds(make_schedule):
            rounds = []
            for seed in range(5):
                network = make_network(graph, seed=100 + seed)
                result = run_with_wakeups(
                    network, make_schedule(graph), max_rounds_after_wakeup=20_000
                )
                assert result.stabilized
                rounds.append(result.rounds_after_last_wakeup)
            return float(np.mean(rounds))

        simultaneous = mean_rounds(
            lambda g: WakeupSchedule.simultaneous(g.num_vertices)
        )
        staggered = mean_rounds(
            lambda g: WakeupSchedule.staggered(g.num_vertices, gap=1)
        )
        assert staggered <= 3 * max(simultaneous, 5.0)
