"""The engine-backend registry replacing string-dispatch chains."""

import pytest

from repro.core.engines.registry import (
    EngineBackend,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.core.runner import compute_mis
from repro.graphs import generators


def test_builtins_registered():
    names = available_engines()
    assert {"vectorized", "reference", "batched"} <= set(names)
    assert list(names) == sorted(names)


def test_get_engine_returns_backend():
    backend = get_engine("vectorized")
    assert isinstance(backend, EngineBackend)
    assert backend.name == "vectorized"
    assert callable(backend.run)


def test_unknown_engine_lists_alternatives():
    with pytest.raises(ValueError, match="vectorized"):
        get_engine("quantum")


def test_register_and_unregister_custom_engine():
    calls = []

    def run(graph, policy, variant, seed, max_rounds, arbitrary_start):
        calls.append(variant)
        return get_engine("vectorized").run(
            graph, policy, variant, seed, max_rounds, arbitrary_start
        )

    register_engine("custom-test", run, description="delegating test engine")
    try:
        assert "custom-test" in available_engines()
        graph = generators.cycle(12)
        result = compute_mis(graph, seed=0, engine="custom-test")
        assert calls == ["max_degree"]
        assert result.mis  # a certified MIS came back through the backend
    finally:
        unregister_engine("custom-test")
    assert "custom-test" not in available_engines()


def test_duplicate_registration_needs_overwrite():
    backend = get_engine("vectorized")
    with pytest.raises(ValueError, match="already registered"):
        register_engine("vectorized", backend.run)
    # Explicit overwrite round-trips the same backend harmlessly.
    register_engine(
        "vectorized", backend.run, description=backend.description,
        capabilities=backend.capabilities, overwrite=True,
    )
    assert get_engine("vectorized").run is backend.run


def test_all_backends_agree_on_small_graph():
    graph = generators.erdos_renyi_mean_degree(30, 4.0, seed=6)
    results = {
        name: compute_mis(graph, seed=4, engine=name)
        for name in ("vectorized", "reference", "batched")
    }
    for result in results.values():
        assert result.mis
    # Certified-legal outputs; engines need not agree on the exact set,
    # but the vectorized and reference engines are bit-identical.
    assert results["vectorized"].mis == results["reference"].mis
    assert results["vectorized"].rounds == results["reference"].rounds
