"""The engine-backend registry replacing string-dispatch chains."""

import pytest

from repro.core.engines.registry import (
    EngineBackend,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.core.runner import compute_mis
from repro.graphs import generators


def test_builtins_registered():
    names = available_engines()
    assert {"vectorized", "reference", "batched"} <= set(names)
    assert list(names) == sorted(names)


def test_get_engine_returns_backend():
    backend = get_engine("vectorized")
    assert isinstance(backend, EngineBackend)
    assert backend.name == "vectorized"
    assert callable(backend.run)


def test_unknown_engine_lists_alternatives():
    with pytest.raises(ValueError, match="vectorized"):
        get_engine("quantum")


def test_register_and_unregister_custom_engine():
    calls = []

    def run(graph, policy, variant, seed, max_rounds, arbitrary_start):
        calls.append(variant)
        return get_engine("vectorized").run(
            graph, policy, variant, seed, max_rounds, arbitrary_start
        )

    register_engine("custom-test", run, description="delegating test engine")
    try:
        assert "custom-test" in available_engines()
        graph = generators.cycle(12)
        result = compute_mis(graph, seed=0, engine="custom-test")
        assert calls == ["max_degree"]
        assert result.mis  # a certified MIS came back through the backend
    finally:
        unregister_engine("custom-test")
    assert "custom-test" not in available_engines()


def test_duplicate_registration_needs_overwrite():
    backend = get_engine("vectorized")
    with pytest.raises(ValueError, match="already registered"):
        register_engine("vectorized", backend.run)
    # Explicit overwrite round-trips the same backend harmlessly.
    register_engine(
        "vectorized", backend.run, description=backend.description,
        capabilities=backend.capabilities, overwrite=True,
    )
    assert get_engine("vectorized").run is backend.run


# ----------------------------------------------------------------------
# Registry lock + programmatic contract (regression against silent drift)
# ----------------------------------------------------------------------
def test_registry_lock_builtin_names_are_stable():
    """The public backend names are API: renaming or dropping one breaks
    every CLI invocation and saved sweep config that mentions it."""
    assert available_engines() == ("batched", "reference", "vectorized")


def test_every_registered_backend_satisfies_the_contract():
    from repro.devtools.contract import verify_registry

    problems = {
        name: issues for name, issues in verify_registry().items() if issues
    }
    assert problems == {}


def test_engine_classes_satisfy_the_class_contract():
    from repro.core.engines import (
        BatchedEngine,
        ConstantStateEngine,
        SingleChannelEngine,
        TwoChannelEngine,
    )
    from repro.core.engines.base import EngineBase
    from repro.devtools.contract import verify_engine_class

    for cls in (SingleChannelEngine, TwoChannelEngine):
        assert verify_engine_class(cls) == []
    # Non-EngineBase engines are reported as such, not silently passed.
    for cls in (BatchedEngine, ConstantStateEngine):
        problems = verify_engine_class(cls)
        assert problems and "not an EngineBase subclass" in problems[0]
    # A defective subclass is caught programmatically.
    class Broken(EngineBase):
        pass

    assert any("step" in p for p in verify_engine_class(Broken))


def test_verify_backend_rejects_graph_mutators():
    from repro.core.engines.registry import EngineBackend
    from repro.devtools.contract import verify_backend

    def mutating_run(graph, policy, variant, seed, max_rounds, arbitrary_start):
        outcome = get_engine("vectorized").run(
            graph, policy, variant, seed, max_rounds, arbitrary_start
        )
        # Simulate an engine that edits the shared topology in place.
        object.__setattr__(graph, "_edges", graph.edges[:-1])
        return outcome

    backend = EngineBackend(name="mutator", run=mutating_run)
    problems = verify_backend(backend)
    assert any("mutated the input Graph" in p for p in problems)


def test_all_backends_agree_on_small_graph():
    graph = generators.erdos_renyi_mean_degree(30, 4.0, seed=6)
    results = {
        name: compute_mis(graph, seed=4, engine=name)
        for name in ("vectorized", "reference", "batched")
    }
    for result in results.values():
        assert result.mis
    # Certified-legal outputs; engines need not agree on the exact set,
    # but the vectorized and reference engines are bit-identical.
    assert results["vectorized"].mis == results["reference"].mis
    assert results["vectorized"].rounds == results["reference"].rounds
