"""Unit & integration tests for Algorithm 2 (TwoChannelMIS)."""

import numpy as np
import pytest

from repro.beeping.algorithm import LocalKnowledge, NodeOutput
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.core.algorithm_two_channel import TwoChannelMIS
from repro.core.knowledge import neighborhood_degree_policy, uniform_policy
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis

from conftest import small_graph_zoo


K = LocalKnowledge(ell_max=5)
ALG = TwoChannelMIS()


class TestStateLifecycle:
    def test_fresh_state(self):
        assert ALG.fresh_state(K) == 1

    def test_missing_ell_max_rejected(self):
        with pytest.raises(ValueError, match="ell_max"):
            ALG.fresh_state(LocalKnowledge())

    def test_random_state_covers_universe(self):
        rng = np.random.default_rng(0)
        samples = {ALG.random_state(K, rng) for _ in range(2000)}
        assert samples == set(range(0, 6))


class TestRoundBehaviour:
    def test_two_channels_declared(self):
        assert ALG.num_channels == 2

    def test_mis_member_beeps_only_channel2(self):
        assert ALG.beeps(0, K, 0.0) == (False, True)

    def test_competitor_beeps_channel1_probabilistically(self):
        assert ALG.beeps(1, K, 0.49) == (True, False)
        assert ALG.beeps(1, K, 0.51) == (False, False)
        assert ALG.beeps(2, K, 0.24) == (True, False)

    def test_max_level_silent(self):
        assert ALG.beeps(5, K, 0.0) == (False, False)

    def test_step_branches(self):
        # beep2 received dominates everything.
        assert ALG.step(2, (True, False), (True, True), K) == 5
        # beep1 received increments.
        assert ALG.step(2, (False, False), (True, False), K) == 3
        # solo beep1 joins the MIS.
        assert ALG.step(2, (True, False), (False, False), K) == 0
        # silence decrements with floor 1.
        assert ALG.step(3, (False, False), (False, False), K) == 2
        assert ALG.step(1, (False, False), (False, False), K) == 1
        # a 0-vertex hearing nothing holds its position.
        assert ALG.step(0, (False, True), (False, False), K) == 0

    def test_output_map(self):
        assert ALG.output(0, K) is NodeOutput.IN_MIS
        assert ALG.output(5, K) is NodeOutput.NOT_IN_MIS
        assert ALG.output(2, K) is NodeOutput.UNDECIDED


class TestConflictResolution:
    def test_adjacent_members_mutually_retreat(self):
        """Two adjacent corrupted 0-vertices both hear beep₂ and leave."""
        g = Graph(2, [(0, 1)])
        policy = uniform_policy(g, 4)
        network = BeepingNetwork(
            g, ALG, policy.knowledge(g), seed=0, initial_states=[0, 0]
        )
        network.step()
        assert network.states == (4, 4)

    def test_member_silences_competitor(self):
        g = Graph(2, [(0, 1)])
        policy = uniform_policy(g, 4)
        network = BeepingNetwork(
            g, ALG, policy.knowledge(g), seed=0, initial_states=[0, 2]
        )
        network.step()
        assert network.states[0] == 0
        assert network.states[1] == 4


class TestSmallGraphDynamics:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_stabilizes_from_fresh_start(self, name, graph):
        policy = neighborhood_degree_policy(graph, c1=4)
        network = BeepingNetwork(graph, ALG, policy.knowledge(graph), seed=5)
        result = run_until_stable(network, max_rounds=5000)
        assert result.stabilized, name
        assert check_mis(graph, result.mis) is None, name

    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_stabilizes_from_arbitrary_start(self, name, graph):
        policy = neighborhood_degree_policy(graph, c1=4)
        algorithm = TwoChannelMIS()
        rng = np.random.default_rng(29)
        knowledge = policy.knowledge(graph)
        initial = [algorithm.random_state(k, rng) for k in knowledge]
        network = BeepingNetwork(
            graph, algorithm, knowledge, seed=rng, initial_states=initial
        )
        result = run_until_stable(network, max_rounds=5000)
        assert result.stabilized, name
        assert check_mis(graph, result.mis) is None, name
