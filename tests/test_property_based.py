"""Property-based tests (hypothesis) for the core invariants.

These test the *universally quantified* statements of the paper over
randomly generated graphs, policies, and initial configurations:

* the level update rules preserve the state universe and the
  "negative only via solo beep" certificate,
* from ANY initial configuration the algorithms stabilize to a valid
  MIS (the self-stabilization theorem itself),
* legality is closed under the dynamics,
* the stable set S_t is monotone non-decreasing,
* the MIS oracles agree with a brute-force definition check.
"""

import itertools

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.knowledge import explicit_policy
from repro.core.levels import update_level, update_level_two_channel
from repro.core.vectorized import (
    SingleChannelEngine,
    simulate_single,
    simulate_two_channel,
)
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis, greedy_mis, is_maximal_independent_set


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_vertices=12):
    """Random simple graphs with up to ``max_vertices`` vertices."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = list(itertools.combinations(range(n), 2))
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible))) if possible else []
    return Graph(n, edges)


@st.composite
def graph_with_policy(draw, max_vertices=10, max_ell=6):
    graph = draw(graphs(max_vertices=max_vertices))
    ell = draw(
        st.lists(
            st.integers(min_value=2, max_value=max_ell),
            min_size=graph.num_vertices,
            max_size=graph.num_vertices,
        )
    )
    return graph, explicit_policy(ell)


@st.composite
def graph_policy_levels(draw, two_channel=False):
    graph, policy = draw(graph_with_policy())
    levels = []
    for e in policy.ell_max:
        low = 0 if two_channel else -e
        levels.append(draw(st.integers(min_value=low, max_value=e)))
    return graph, policy, np.array(levels, dtype=np.int64)


# ----------------------------------------------------------------------
# Update-rule invariants
# ----------------------------------------------------------------------
@given(
    level=st.integers(-20, 20),
    beeped=st.booleans(),
    heard=st.booleans(),
    ell_max=st.integers(1, 20),
)
def test_single_update_preserves_universe(level, beeped, heard, ell_max):
    level = max(-ell_max, min(ell_max, level))
    new = update_level(level, beeped, heard, ell_max)
    assert -ell_max <= new <= ell_max
    # The solo-beep certificate (Lemma 3.4's engine): a transition to a
    # negative level from a non-negative one requires beeping alone.
    if new < 0 and level >= 0:
        assert beeped and not heard
    # Hearing a beep never decreases the level.
    if heard:
        assert new >= level


@given(
    level=st.integers(0, 20),
    beeped1=st.booleans(),
    heard1=st.booleans(),
    heard2=st.booleans(),
    ell_max=st.integers(1, 20),
)
def test_two_channel_update_preserves_universe(level, beeped1, heard1, heard2, ell_max):
    level = min(level, ell_max)
    new = update_level_two_channel(level, beeped1, heard1, heard2, ell_max)
    assert 0 <= new <= ell_max
    # Hearing an MIS announcement forces the non-member state.
    if heard2:
        assert new == ell_max
    # Joining the MIS (level 0) from above requires a solo beep1.
    if new == 0 and level > 0:
        assert beeped1 and not heard1 and not heard2


# ----------------------------------------------------------------------
# The self-stabilization theorem, universally quantified
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=graph_policy_levels(), seed=st.integers(0, 2**16))
def test_algorithm1_stabilizes_from_any_configuration(data, seed):
    graph, policy, levels = data
    result = simulate_single(
        graph, policy, seed=seed, initial_levels=levels, max_rounds=30_000
    )
    assert result.stabilized
    assert check_mis(graph, result.mis) is None


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=graph_policy_levels(two_channel=True), seed=st.integers(0, 2**16))
def test_algorithm2_stabilizes_from_any_configuration(data, seed):
    graph, policy, levels = data
    result = simulate_two_channel(
        graph, policy, seed=seed, initial_levels=levels, max_rounds=30_000
    )
    assert result.stabilized
    assert check_mis(graph, result.mis) is None


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=graph_policy_levels(), seed=st.integers(0, 2**16))
def test_stable_set_monotonicity_property(data, seed):
    graph, policy, levels = data
    engine = SingleChannelEngine(graph, policy, seed=seed)
    engine.set_levels(levels)
    previous = engine.stable_mask().copy()
    for _ in range(60):
        engine.step()
        current = engine.stable_mask()
        assert bool(np.all(current[previous]))
        previous = current.copy()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=graph_with_policy(), seed=st.integers(0, 2**16))
def test_legality_is_absorbing(data, seed):
    graph, policy = data
    mis = greedy_mis(graph)
    levels = np.array(
        [(-policy.ell_max[v] if v in mis else policy.ell_max[v]) for v in graph.vertices()],
        dtype=np.int64,
    )
    engine = SingleChannelEngine(graph, policy, seed=seed)
    engine.set_levels(levels)
    assert engine.is_legal()
    for _ in range(30):
        engine.step()
        assert engine.is_legal()
        assert (engine.levels == levels).all()


# ----------------------------------------------------------------------
# Oracle cross-checks
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(graph=graphs(max_vertices=8), bits=st.integers(0, 2**8 - 1))
def test_mis_validator_matches_definition(graph, bits):
    candidate = {v for v in graph.vertices() if bits & (1 << v)}
    members = set(candidate)
    independent = all(
        not (u in members and v in members) for u, v in graph.edges
    )
    maximal = all(
        v in members or any(u in members for u in graph.neighbors(v))
        for v in graph.vertices()
    )
    assert is_maximal_independent_set(graph, candidate) == (independent and maximal)
    assert (check_mis(graph, candidate) is None) == (independent and maximal)


@settings(max_examples=60, deadline=None)
@given(graph=graphs(max_vertices=10))
def test_greedy_always_produces_mis(graph):
    assert check_mis(graph, greedy_mis(graph)) is None


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=graphs(max_vertices=8), seed=st.integers(0, 2**16))
def test_coloring_always_proper_and_bounded(graph, seed):
    """The iterated-MIS coloring is proper and uses ≤ Δ+1 colors on any
    graph, for any seed."""
    from repro.apps.coloring import iterated_mis_coloring, validate_coloring

    result = iterated_mis_coloring(graph, seed=seed, c1=3)
    assert validate_coloring(graph, result.colors) is None
    assert result.num_colors <= graph.max_degree() + 1


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=graphs(max_vertices=8), seed=st.integers(0, 2**16))
def test_matching_always_maximal(graph, seed):
    from repro.apps.matching import maximal_matching, validate_matching

    result = maximal_matching(graph, seed=seed, c1=3)
    assert validate_matching(graph, result.matching) is None


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    graph=graphs(max_vertices=8),
    seed=st.integers(0, 2**16),
    bound=st.integers(1, 4),
)
def test_counting_mis_stabilizes_for_any_bound(graph, seed, bound):
    """The Stone Age counting variant converges to a valid MIS for any
    counting bound b, from arbitrary states."""
    from repro.core.knowledge import max_degree_policy
    from repro.stoneage import CountingMIS, StoneAgeNetwork, run_stone_age_until_stable

    policy = max_degree_policy(graph, c1=3)
    network = StoneAgeNetwork(
        graph, CountingMIS(), policy.knowledge(graph), seed=seed, bound=bound
    )
    network.randomize_states()
    ok, rounds, mis = run_stone_age_until_stable(network, max_rounds=30_000)
    assert ok
    assert check_mis(graph, mis) is None


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    graph=graphs(max_vertices=8),
    seed=st.integers(0, 2**16),
    horizon=st.integers(0, 20),
)
def test_any_wakeup_schedule_stabilizes(graph, seed, horizon):
    from repro.beeping.network import BeepingNetwork
    from repro.beeping.wakeup import WakeupSchedule, run_with_wakeups
    from repro.core.algorithm_single import SelfStabilizingMIS
    from repro.core.knowledge import max_degree_policy

    policy = max_degree_policy(graph, c1=3)
    network = BeepingNetwork(
        graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=seed
    )
    schedule = WakeupSchedule.random(graph.num_vertices, horizon=horizon, seed=seed)
    result = run_with_wakeups(network, schedule, max_rounds_after_wakeup=30_000)
    assert result.stabilized
    assert check_mis(graph, result.mis) is None


@settings(max_examples=40, deadline=None)
@given(graph=graphs(max_vertices=10))
def test_subgraph_complement_consistency(graph):
    n = graph.num_vertices
    assert graph.complement().num_edges == n * (n - 1) // 2 - graph.num_edges
    sub = graph.subgraph(graph.vertices())
    assert sub == graph


# ----------------------------------------------------------------------
# Stabilization under stress: channel × scheduler, from any start
# ----------------------------------------------------------------------
# Noise kept below the empirically-recoverable thresholds
# (docs/robustness.md): Algorithm 2's spurious beep2 hears destabilize
# it at noise levels Algorithm 1 shrugs off, so its grid is gentler.
STRESS_CHANNELS_SINGLE = ("lossy:0.1", "noisy:0.03", "unreliable:0.05,0.01")
STRESS_CHANNELS_TWO = ("lossy:0.05", "noisy:0.01", "unreliable:0.02,0.005")
STRESS_SCHEDULERS = (
    "drift:0.1",
    "drift:0.3,2",
    "adversarial:staggered,2",
    "adversarial:simultaneous",
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=graph_policy_levels(),
    seed=st.integers(0, 2**16),
    channel=st.sampled_from(STRESS_CHANNELS_SINGLE),
    scheduler=st.sampled_from(STRESS_SCHEDULERS),
)
def test_algorithm1_stabilizes_under_stress(data, seed, channel, scheduler):
    graph, policy, levels = data
    result = simulate_single(
        graph, policy, seed=seed, initial_levels=levels, max_rounds=60_000,
        channel=channel, scheduler=scheduler,
    )
    assert result.stabilized
    assert check_mis(graph, result.mis) is None


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=graph_policy_levels(two_channel=True),
    seed=st.integers(0, 2**16),
    channel=st.sampled_from(STRESS_CHANNELS_TWO),
    scheduler=st.sampled_from(STRESS_SCHEDULERS),
)
def test_algorithm2_stabilizes_under_stress(data, seed, channel, scheduler):
    graph, policy, levels = data
    result = simulate_two_channel(
        graph, policy, seed=seed, initial_levels=levels, max_rounds=60_000,
        channel=channel, scheduler=scheduler,
    )
    assert result.stabilized
    assert check_mis(graph, result.mis) is None


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=graph_policy_levels(),
    seed=st.integers(0, 2**16),
    scheduler=st.sampled_from(STRESS_SCHEDULERS),
)
def test_scheduler_delay_preserves_level_universe(data, seed, scheduler):
    """Delay without noise: every intermediate configuration stays in
    the level universe."""
    graph, policy, levels = data
    engine = SingleChannelEngine(graph, policy, seed=seed, scheduler=scheduler)
    engine.set_levels(levels)
    ell = np.asarray(policy.ell_max, dtype=np.int64)
    for _ in range(80):
        engine.step()
        assert np.all(engine.levels >= -ell) and np.all(engine.levels <= ell)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=graph_policy_levels(), seed=st.integers(0, 2**16), gap=st.integers(1, 4))
def test_dormant_vertices_hold_their_level(data, seed, gap):
    """Under the staggered wake-up adversary, vertex v is dormant until
    round gap*v — its (possibly corrupted) level must be frozen until
    then, exactly the paper's sleeping-vertex semantics."""
    graph, policy, levels = data
    engine = SingleChannelEngine(
        graph, policy, seed=seed, scheduler=f"adversarial:staggered,{gap}"
    )
    engine.set_levels(levels)
    vertices = np.arange(graph.num_vertices)
    for round_index in range(min(gap * graph.num_vertices, 24)):
        engine.step()
        dormant = gap * vertices > round_index
        np.testing.assert_array_equal(engine.levels[dormant], levels[dormant])
