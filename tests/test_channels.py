"""Unit tests for the stress-model layer (docs/robustness.md).

Covers the channel models (repro.beeping.channels) and round schedulers
(repro.beeping.schedulers) in isolation: spec parsing round-trips,
perturbation semantics at the probability extremes, counter bookkeeping,
drift lag bounds, adversarial wake-up composition, and both registries'
error paths.  Engine integration is exercised by
tests/test_robustness_differential.py and the property suites.
"""

import numpy as np
import pytest

from repro.beeping.channels import (
    CHANNEL_SPECS,
    ChannelModel,
    LossyChannel,
    NoisyChannel,
    PerfectChannel,
    UnreliableChannel,
    available_channels,
    channel_from_spec,
    register_channel,
    resolve_channel,
    unregister_channel,
)
from repro.beeping.schedulers import (
    AdversarialScheduler,
    BoundedDriftScheduler,
    Scheduler,
    SynchronousScheduler,
    available_schedulers,
    register_scheduler,
    resolve_scheduler,
    scheduler_from_spec,
    unregister_scheduler,
)
from repro.beeping.wakeup import WakeupSchedule


# ----------------------------------------------------------------------
# Channel specs and registry
# ----------------------------------------------------------------------
def test_channel_spec_round_trips():
    for model in (
        PerfectChannel(),
        LossyChannel(0.25),
        NoisyChannel(0.05),
        UnreliableChannel(0.1, 0.02),
    ):
        assert channel_from_spec(model.spec()) == model


def test_every_advertised_channel_spec_parses():
    examples = {
        "perfect": "perfect",
        "lossy:P_MISS": "lossy:0.1",
        "noisy:P_FALSE": "noisy:0.1",
        "unreliable:P_MISS,P_FALSE": "unreliable:0.1,0.05",
    }
    assert set(examples) == set(CHANNEL_SPECS)
    for template, example in examples.items():
        name = template.partition(":")[0]
        assert channel_from_spec(example).name == name
        assert name in available_channels()


def test_channel_spec_errors():
    with pytest.raises(ValueError, match="unknown channel"):
        channel_from_spec("quantum:0.5")
    with pytest.raises(ValueError, match="no parameters"):
        channel_from_spec("perfect:0.5")
    with pytest.raises(ValueError, match="must be a float"):
        channel_from_spec("lossy:sometimes")
    with pytest.raises(ValueError, match=r"in \[0, 1\]"):
        channel_from_spec("lossy:1.5")
    with pytest.raises(ValueError, match="exactly two parameters"):
        channel_from_spec("unreliable:0.1")
    with pytest.raises(ValueError, match=r"in \[0, 1\]"):
        LossyChannel(-0.1)
    with pytest.raises(ValueError, match=r"in \[0, 1\]"):
        UnreliableChannel(0.1, 2.0)


def test_resolve_channel_coercions():
    assert resolve_channel(None) == PerfectChannel()
    assert resolve_channel("lossy:0.3") == LossyChannel(0.3)
    model = NoisyChannel(0.1)
    assert resolve_channel(model) is model
    with pytest.raises(TypeError, match="spec string or ChannelModel"):
        resolve_channel(0.3)


def test_channel_registry_rejects_duplicates_and_unregisters():
    register_channel("test_burst", lambda arg: PerfectChannel())
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_channel("test_burst", lambda arg: PerfectChannel())
        assert "test_burst" in available_channels()
        assert isinstance(channel_from_spec("test_burst"), ChannelModel)
    finally:
        unregister_channel("test_burst")
    assert "test_burst" not in available_channels()


# ----------------------------------------------------------------------
# Channel perturbation semantics
# ----------------------------------------------------------------------
def test_perfect_channel_needs_no_rng_and_never_mutates():
    bound = PerfectChannel().bind()
    assert bound.is_perfect
    heard = np.array([True, False, True])
    out = bound.apply(heard, None)  # rng=None: never touched
    assert out is heard
    assert list(out) == [True, False, True]
    assert bound.drops_total == 0 and bound.spurious_total == 0


def test_lossy_one_drops_everything(rng):
    bound = LossyChannel(1.0).bind()
    bound.start_round()
    heard = np.array([True, True, False, True])
    bound.apply(heard, rng)
    assert not heard.any()
    assert bound.last_drops == 3 and bound.last_spurious == 0


def test_noisy_one_fills_everything(rng):
    bound = NoisyChannel(1.0).bind()
    bound.start_round()
    heard = np.array([True, False, False])
    bound.apply(heard, rng)
    assert heard.all()
    assert bound.last_drops == 0 and bound.last_spurious == 2


def test_unreliable_composes_lossy_then_noisy():
    # p_miss = p_false = 1: every true bit is dropped, then every (now
    # all-silent) position refills spuriously — the documented order.
    bound = UnreliableChannel(1.0, 1.0).bind()
    bound.start_round()
    heard = np.array([True, False, True])
    bound.apply(heard, np.random.default_rng(0))
    assert heard.all()
    assert bound.last_drops == 2 and bound.last_spurious == 3


def test_unreliable_matches_chaining_lossy_then_noisy():
    rng_a = np.random.default_rng(42)
    rng_b = np.random.default_rng(42)
    heard_a = np.random.default_rng(7).random(200) < 0.5
    heard_b = heard_a.copy()
    UnreliableChannel(0.3, 0.2).bind().apply(heard_a, rng_a)
    chained = LossyChannel(0.3).bind()
    chained.apply(heard_b, rng_b)
    NoisyChannel(0.2).bind().apply(heard_b, rng_b)
    np.testing.assert_array_equal(heard_a, heard_b)


def test_bound_channel_counters_accumulate_across_rounds(rng):
    bound = LossyChannel(1.0).bind()
    for expected_total, beeps in ((2, 2), (5, 3)):
        bound.start_round()
        heard = np.zeros(8, dtype=bool)
        heard[:beeps] = True
        bound.apply(heard, rng)
        assert bound.last_drops == beeps
        assert bound.drops_total == expected_total
    # Two applications in one round (the two-channel engine) accumulate
    # into the same last_* counters.
    bound.start_round()
    one = np.array([True])
    bound.apply(one.copy(), rng)
    bound.apply(one.copy(), rng)
    assert bound.last_drops == 2
    assert bound.drops_total == 7


def test_noise_draw_layout_is_data_independent(rng):
    # Non-perfect models draw random(shape) unconditionally, so the
    # stream position after apply() is the same whatever was heard.
    for model in (LossyChannel(0.5), NoisyChannel(0.5)):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        model.bind().apply(np.ones(16, dtype=bool), rng_a)
        model.bind().apply(np.zeros(16, dtype=bool), rng_b)
        assert rng_a.random() == rng_b.random()


# ----------------------------------------------------------------------
# Scheduler specs and registry
# ----------------------------------------------------------------------
def test_scheduler_spec_round_trips():
    for model in (
        SynchronousScheduler(),
        BoundedDriftScheduler(0.25),
        BoundedDriftScheduler(0.1, max_lag=5),
    ):
        assert scheduler_from_spec(model.spec()) == model
    adv = AdversarialScheduler(kind="staggered", gap=2)
    assert scheduler_from_spec(adv.spec()) == adv


def test_scheduler_spec_errors():
    with pytest.raises(ValueError, match="unknown scheduler"):
        scheduler_from_spec("quantum")
    with pytest.raises(ValueError, match="no parameters"):
        scheduler_from_spec("synchronous:1")
    with pytest.raises(ValueError, match="requires P_SKIP"):
        scheduler_from_spec("drift")
    with pytest.raises(ValueError, match="synchronous scheduler for p_skip = 0"):
        scheduler_from_spec("drift:0")
    with pytest.raises(ValueError, match="at most two parameters"):
        scheduler_from_spec("drift:0.1,3,9")
    with pytest.raises(ValueError, match="unknown adversarial kind"):
        scheduler_from_spec("adversarial:random")
    with pytest.raises(ValueError, match="max_lag must be >= 1"):
        BoundedDriftScheduler(0.1, max_lag=0)
    with pytest.raises(ValueError, match="gap must be >= 1"):
        AdversarialScheduler(gap=0)


def test_resolve_scheduler_coercions():
    assert resolve_scheduler(None) == SynchronousScheduler()
    assert resolve_scheduler("drift:0.2") == BoundedDriftScheduler(0.2)
    model = SynchronousScheduler()
    assert resolve_scheduler(model) is model
    with pytest.raises(TypeError, match="spec string or Scheduler"):
        resolve_scheduler(3)


def test_scheduler_registry_rejects_duplicates_and_unregisters():
    register_scheduler("test_pulse", lambda arg: SynchronousScheduler())
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("test_pulse", lambda arg: SynchronousScheduler())
        assert "test_pulse" in available_schedulers()
        assert isinstance(scheduler_from_spec("test_pulse"), Scheduler)
    finally:
        unregister_scheduler("test_pulse")
    assert "test_pulse" not in available_schedulers()


# ----------------------------------------------------------------------
# Scheduler semantics
# ----------------------------------------------------------------------
def test_synchronous_scheduler_returns_none_and_draws_nothing():
    model = SynchronousScheduler()
    assert model.trivial and not model.needs_rng
    bound = model.bind(5)
    assert bound.is_synchronous
    assert bound.active_mask(0, None) is None


def test_drift_never_exceeds_max_lag(rng):
    bound = BoundedDriftScheduler(0.9, max_lag=2).bind(64)
    lag = np.zeros(64, dtype=np.int64)
    for round_index in range(200):
        active = bound.active_mask(round_index, rng)
        assert active is not None
        lag = np.where(active, 0, lag + 1)
        assert lag.max() <= 2  # a third consecutive skip is impossible


def test_drift_forced_fire_at_max_lag():
    # p_skip ≈ 1: every vertex skips until the lag bound forces a fire,
    # so firing happens exactly every (max_lag + 1) rounds.
    bound = BoundedDriftScheduler(1 - 1e-12, max_lag=3).bind(8)
    rng = np.random.default_rng(0)
    pattern = [bool(bound.active_mask(r, rng).any()) for r in range(8)]
    assert pattern == [False, False, False, True] * 2


def test_adversarial_staggered_wakes_in_order():
    bound = AdversarialScheduler(kind="staggered", gap=2).bind(3)
    masks = [bound.active_mask(r, None) for r in range(5)]
    expected = [
        [True, False, False],
        [True, False, False],
        [True, True, False],
        [True, True, False],
        [True, True, True],
    ]
    for mask, want in zip(masks, expected):
        assert list(mask) == want


def test_adversarial_simultaneous_is_all_active_but_not_synchronous():
    model = AdversarialScheduler(kind="simultaneous")
    assert not model.needs_rng  # p_skip = 0 draws nothing
    bound = model.bind(4)
    assert not bound.is_synchronous
    mask = bound.active_mask(0, None)
    assert mask is not None and mask.all()


def test_adversarial_explicit_schedule_length_mismatch():
    schedule = WakeupSchedule.staggered(5, gap=1)
    model = AdversarialScheduler(schedule=schedule)
    assert model.bind(5) is not None
    with pytest.raises(ValueError, match="covers 5 vertices"):
        model.bind(7)


def test_adversarial_with_drift_gates_only_awake_vertices():
    model = AdversarialScheduler(kind="staggered", gap=3, p_skip=0.5)
    assert model.needs_rng
    bound = model.bind(4)
    rng = np.random.default_rng(1)
    for round_index in range(12):
        active = bound.active_mask(round_index, rng)
        dormant = np.asarray([3 * v > round_index for v in range(4)])
        assert not (active & dormant).any()  # dormant vertices never fire
