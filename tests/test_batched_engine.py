"""BatchedEngine: R replicas in one level matrix, bit-identical each.

The load-bearing contract (module docstring of
``repro.core.engines.batched``): replica ``k`` of a batched run is
*bit-identical* — same trajectory, same stabilization round, same MIS,
same final levels — to a solo ``simulate_single`` / ``simulate_two_channel``
run seeded with the corresponding spawned child ``SeedSequence``.
"""

import numpy as np
import pytest

from repro.core.engines import (
    BatchedEngine,
    BatchedResult,
    simulate_batched,
    simulate_single,
    simulate_two_channel,
)
from repro.core.knowledge import (
    max_degree_policy,
    neighborhood_degree_policy,
)
from repro.graphs import generators


@pytest.fixture
def graph():
    return generators.erdos_renyi_mean_degree(60, 5.0, seed=11)


def _children(seed, replicas):
    return np.random.SeedSequence(seed).spawn(replicas)


# ----------------------------------------------------------------------
# The bit-identity contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("arbitrary_start", [False, True])
def test_replicas_match_solo_single_channel(graph, arbitrary_start):
    policy = max_degree_policy(graph, c1=6)
    replicas = 5
    batch = simulate_batched(
        graph, policy, replicas=replicas, seed=123,
        arbitrary_start=arbitrary_start,
    )
    for k, child in enumerate(_children(123, replicas)):
        solo = simulate_single(
            graph, policy, seed=np.random.default_rng(child),
            arbitrary_start=arbitrary_start,
        )
        assert batch[k].stabilized and solo.stabilized
        assert batch[k].rounds == solo.rounds
        assert batch[k].mis == solo.mis
        assert np.array_equal(batch[k].final_levels, solo.final_levels)


@pytest.mark.parametrize("arbitrary_start", [False, True])
def test_replicas_match_solo_two_channel(graph, arbitrary_start):
    policy = neighborhood_degree_policy(graph, c1=6)
    replicas = 4
    batch = simulate_batched(
        graph, policy, replicas=replicas, seed=77, algorithm="two_channel",
        arbitrary_start=arbitrary_start,
    )
    for k, child in enumerate(_children(77, replicas)):
        solo = simulate_two_channel(
            graph, policy, seed=np.random.default_rng(child),
            arbitrary_start=arbitrary_start,
        )
        assert batch[k].rounds == solo.rounds
        assert batch[k].mis == solo.mis
        assert np.array_equal(batch[k].final_levels, solo.final_levels)


def test_explicit_seed_sequences_equal_spawned(graph):
    """The sweep executor's hook: handing children explicitly."""
    policy = max_degree_policy(graph, c1=6)
    children = _children(9, 3)
    via_seed = simulate_batched(
        graph, policy, replicas=3, seed=9, arbitrary_start=True
    )
    via_children = simulate_batched(
        graph, policy, seed_sequences=children, arbitrary_start=True
    )
    for a, b in zip(via_seed, via_children):
        assert a.rounds == b.rounds
        assert a.mis == b.mis
        assert np.array_equal(a.final_levels, b.final_levels)


def test_check_every_matches_solo_cadence(graph):
    """Coarser legality cadence shifts rounds identically to solo runs."""
    policy = max_degree_policy(graph, c1=6)
    batch = simulate_batched(
        graph, policy, replicas=3, seed=5, arbitrary_start=True, check_every=4
    )
    for k, child in enumerate(_children(5, 3)):
        solo = simulate_single(
            graph, policy, seed=np.random.default_rng(child),
            arbitrary_start=True, check_every=4,
        )
        assert batch[k].rounds == solo.rounds
        assert batch[k].rounds % 4 == 0


# ----------------------------------------------------------------------
# Mechanics
# ----------------------------------------------------------------------
def test_retired_replicas_freeze(graph):
    """A replica that stabilizes stops stepping and drawing randomness."""
    policy = max_degree_policy(graph, c1=6)
    engine = BatchedEngine(graph, policy, replicas=6, seed=31)
    engine.randomize_levels()
    result = engine.run(max_rounds=10_000)
    rounds = result.rounds
    assert len(set(int(r) for r in rounds)) > 1  # replicas finish apart
    for k in range(6):
        assert np.array_equal(engine.levels[k], result[k].final_levels)
        assert engine._legal_rows(engine.levels[k : k + 1])[0]


def test_batched_result_views(graph):
    policy = max_degree_policy(graph, c1=6)
    result = simulate_batched(
        graph, policy, replicas=4, seed=2, arbitrary_start=True
    )
    assert isinstance(result, BatchedResult)
    assert len(result) == 4
    assert result.stabilized.all()
    assert result.rounds.shape == (4,)
    assert list(result.rounds) == [r.rounds for r in result]


def test_budget_exhaustion_reports_unstabilized():
    graph = generators.complete(8)
    policy = max_degree_policy(graph, c1=8)
    result = simulate_batched(
        graph, policy, replicas=3, seed=1, arbitrary_start=True, max_rounds=1
    )
    assert all(r.rounds <= 1 for r in result)
    assert all(
        r.stabilized or len(r.mis) == 0 for r in result
    )


def test_constructor_validation(graph):
    policy = max_degree_policy(graph, c1=6)
    with pytest.raises(ValueError, match="replicas"):
        BatchedEngine(graph, policy)
    with pytest.raises(ValueError, match="algorithm"):
        BatchedEngine(graph, policy, replicas=2, algorithm="tripled")
    with pytest.raises(ValueError, match="replicas"):
        BatchedEngine(graph, policy, replicas=2, seed_sequences=_children(0, 3))


def test_legal_mask_and_mis_vertices(graph):
    policy = max_degree_policy(graph, c1=6)
    engine = BatchedEngine(graph, policy, replicas=3, seed=8)
    engine.randomize_levels()
    engine.run(max_rounds=10_000)
    assert engine.legal_mask().all()
    for k in range(3):
        mis = engine.mis_vertices(k)
        assert mis  # non-empty on a non-empty graph
        row = engine.mis_mask()[k]
        assert mis == frozenset(int(v) for v in np.nonzero(row)[0])
