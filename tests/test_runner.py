"""Tests for the high-level compute_mis API."""

import pytest

from repro.core.knowledge import uniform_policy
from repro.core.runner import (
    MISResult,
    compute_mis,
    default_round_budget,
    policy_for_variant,
)
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis


class TestPolicyForVariant:
    def test_variants_dispatch(self, er_graph):
        from repro.core.knowledge import KnowledgeModel

        assert (
            policy_for_variant(er_graph, "max_degree").model
            is KnowledgeModel.MAX_DEGREE
        )
        assert (
            policy_for_variant(er_graph, "own_degree").model
            is KnowledgeModel.OWN_DEGREE
        )
        assert (
            policy_for_variant(er_graph, "two_channel").model
            is KnowledgeModel.NEIGHBORHOOD_DEGREE
        )

    def test_c1_forwarded(self, er_graph):
        tight = policy_for_variant(er_graph, "max_degree", c1=4)
        default = policy_for_variant(er_graph, "max_degree")
        assert tight.max_ell_max < default.max_ell_max

    def test_unknown_variant(self, er_graph):
        with pytest.raises(ValueError, match="unknown variant"):
            policy_for_variant(er_graph, "telepathy")


class TestBudget:
    def test_budget_grows_with_n_and_ellmax(self):
        small = gen.path(8)
        large = gen.path(4096)
        assert default_round_budget(large, uniform_policy(large, 5)) > (
            default_round_budget(small, uniform_policy(small, 5))
        )
        assert default_round_budget(small, uniform_policy(small, 50)) > (
            default_round_budget(small, uniform_policy(small, 5))
        )


class TestComputeMis:
    @pytest.mark.parametrize("variant", ["max_degree", "own_degree", "two_channel"])
    def test_all_variants_produce_valid_mis(self, er_graph, variant):
        result = compute_mis(er_graph, variant=variant, seed=1, c1=4)
        assert isinstance(result, MISResult)
        assert result.stabilized
        assert check_mis(er_graph, result.mis) is None
        assert result.variant == variant

    @pytest.mark.parametrize("variant", ["max_degree", "own_degree", "two_channel"])
    def test_arbitrary_start(self, er_graph, variant):
        result = compute_mis(
            er_graph, variant=variant, seed=2, c1=4, arbitrary_start=True
        )
        assert check_mis(er_graph, result.mis) is None

    def test_reference_engine_agrees_on_validity(self, path4):
        result = compute_mis(path4, seed=3, c1=3, engine="reference")
        assert check_mis(path4, result.mis) is None

    def test_seed_determinism(self, er_graph):
        a = compute_mis(er_graph, seed=11, c1=4)
        b = compute_mis(er_graph, seed=11, c1=4)
        assert a.mis == b.mis and a.rounds == b.rounds

    def test_explicit_policy_respected(self, er_graph):
        policy = uniform_policy(er_graph, 8)
        result = compute_mis(er_graph, seed=4, policy=policy)
        assert check_mis(er_graph, result.mis) is None

    def test_theorem_constants_default(self, path4):
        # With the default c1 = 15 the run still stabilizes (slower).
        result = compute_mis(path4, seed=5)
        assert result.stabilized

    def test_budget_exhaustion_raises(self, er_graph):
        with pytest.raises(RuntimeError, match="did not stabilize"):
            compute_mis(er_graph, seed=6, c1=4, max_rounds=1)

    def test_unknown_engine(self, path4):
        with pytest.raises(ValueError, match="engine"):
            compute_mis(path4, seed=0, engine="quantum")

    def test_unknown_variant(self, path4):
        with pytest.raises(ValueError, match="variant"):
            compute_mis(path4, variant="nope")

    def test_empty_graph(self):
        result = compute_mis(Graph(0), seed=0, c1=4)
        assert result.mis == frozenset()
        assert result.rounds == 0

    def test_single_vertex(self):
        result = compute_mis(Graph(1), seed=0, c1=4)
        assert result.mis == {0}

    def test_disconnected_graph(self):
        g = gen.path(5).union_disjoint(gen.complete(4))
        result = compute_mis(g, seed=7, c1=4)
        assert check_mis(g, result.mis) is None
