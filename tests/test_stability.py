"""Unit tests for legality predicates and the (I_t, S_t) structure."""

import pytest

from repro.core.knowledge import uniform_policy
from repro.core.stability import (
    legal_single,
    legal_two_channel,
    mu,
    stable_sets_single,
    stable_sets_two_channel,
)
from repro.core.vectorized import SingleChannelEngine, TwoChannelEngine
from repro.graphs import generators as gen
from repro.graphs.graph import Graph


E = 4  # a small uniform ℓmax used throughout


def legal_levels_for_path4():
    """Path 0-1-2-3 with MIS {0, 2}: levels (-E, E, -E, E)."""
    return [-E, E, -E, E]


class TestMu:
    def test_empty_neighborhood_convention(self):
        g = Graph(1)
        assert mu(g, [3], [E], 0) == 1.0

    def test_min_over_neighbors(self, path4):
        levels = [2, -4, 4, 1]
        assert mu(path4, levels, [E] * 4, 2) == pytest.approx(-1.0)
        assert mu(path4, levels, [E] * 4, 0) == pytest.approx(-1.0)
        assert mu(path4, levels, [E] * 4, 3) == pytest.approx(1.0)

    def test_normalization_by_neighbor_ellmax(self, path4):
        levels = [0, 4, 0, 0]
        ell_max = [4, 8, 4, 4]
        # Vertex 0's only neighbor is 1 with ℓ/ℓmax = 4/8.
        assert mu(path4, levels, ell_max, 0) == pytest.approx(0.5)


class TestSingleChannelLegality:
    def test_legal_path_configuration(self, path4):
        levels = legal_levels_for_path4()
        assert legal_single(path4, levels, [E] * 4)
        sets = stable_sets_single(path4, levels, [E] * 4)
        assert sets.mis == {0, 2}
        assert sets.stable == {0, 1, 2, 3}
        assert sets.is_legal(4)

    def test_alternative_mis_on_path(self, path4):
        assert legal_single(path4, [E, -E, E, -E], [E] * 4)
        assert legal_single(path4, [-E, E, E, -E], [E] * 4)

    def test_undominated_vertex_not_legal(self, path4):
        # {0} alone: vertices 2, 3 are neither members nor dominated.
        assert not legal_single(path4, [-E, E, E, E], [E] * 4)

    def test_adjacent_members_not_legal(self, path4):
        # Adjacent -E vertices do not qualify as I-vertices (their
        # neighbor is not at +ℓmax), so nothing dominates anyone.
        assert not legal_single(path4, [-E, -E, E, E], [E] * 4)

    def test_partial_levels_not_legal(self, path4):
        assert not legal_single(path4, [-E, E, -E, E - 1], [E] * 4)

    def test_isolated_vertex_must_be_member(self):
        g = Graph(1)
        assert legal_single(g, [-E], [E])
        assert not legal_single(g, [E], [E])
        assert not legal_single(g, [0], [E])

    def test_empty_graph_is_legal(self):
        assert legal_single(Graph(0), [], [])

    def test_heterogeneous_ell_max(self):
        g = gen.path(2)
        # v0 in MIS with ℓmax 3, v1 out with ℓmax 6.
        assert legal_single(g, [-3, 6], [3, 6])
        assert not legal_single(g, [-3, 3], [3, 6])

    def test_legal_iff_sets_cover(self, er_graph):
        # Build a legal configuration from a greedy MIS and check both
        # predicates agree.
        from repro.graphs.mis import greedy_mis

        mis = greedy_mis(er_graph)
        levels = [-E if v in mis else E for v in er_graph.vertices()]
        ell_max = [E] * er_graph.num_vertices
        assert legal_single(er_graph, levels, ell_max)
        sets = stable_sets_single(er_graph, levels, ell_max)
        assert sets.mis == mis


class TestSingleChannelFixedPoint:
    def test_legal_configurations_are_fixed_points(self, er_graph):
        """Paper claim: once legal, the configuration never changes."""
        from repro.graphs.mis import greedy_mis

        policy = uniform_policy(er_graph, E)
        engine = SingleChannelEngine(er_graph, policy, seed=0)
        mis = greedy_mis(er_graph)
        engine.set_levels(
            [(-E if v in mis else E) for v in er_graph.vertices()]
        )
        before = engine.levels.copy()
        for _ in range(10):
            engine.step()
        assert (engine.levels == before).all()
        assert engine.is_legal()


class TestTwoChannelLegality:
    def test_legal_path_configuration(self, path4):
        assert legal_two_channel(path4, [0, E, 0, E], [E] * 4)
        sets = stable_sets_two_channel(path4, [0, E, 0, E], [E] * 4)
        assert sets.mis == {0, 2}
        assert sets.is_legal(4)

    def test_adjacent_zeros_not_legal(self, path4):
        assert not legal_two_channel(path4, [0, 0, E, E], [E] * 4)

    def test_undominated_not_legal(self, path4):
        assert not legal_two_channel(path4, [0, E, E, E], [E] * 4)

    def test_isolated_vertex(self):
        g = Graph(1)
        assert legal_two_channel(g, [0], [E])
        assert not legal_two_channel(g, [E], [E])

    def test_fixed_point(self, er_graph):
        from repro.graphs.mis import greedy_mis

        policy = uniform_policy(er_graph, E)
        engine = TwoChannelEngine(er_graph, policy, seed=0)
        mis = greedy_mis(er_graph)
        engine.set_levels([(0 if v in mis else E) for v in er_graph.vertices()])
        before = engine.levels.copy()
        for _ in range(10):
            engine.step()
        assert (engine.levels == before).all()
        assert engine.is_legal()
