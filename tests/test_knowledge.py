"""Unit tests for the ℓmax knowledge policies."""

import math

import pytest

from repro.core.knowledge import (
    COROLLARY_23_C1,
        KnowledgeModel,
    THEOREM_21_C1,
    THEOREM_22_C1,
    explicit_policy,
    max_degree_policy,
    neighborhood_degree_policy,
    own_degree_policy,
    uniform_policy,
)
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.properties import deg2_all


class TestMaxDegreePolicy:
    def test_uniform_over_vertices(self, er_graph):
        policy = max_degree_policy(er_graph)
        assert len(set(policy.ell_max)) == 1
        assert policy.model is KnowledgeModel.MAX_DEGREE

    def test_theorem_value(self, star6):
        # Δ = 5 → ceil(log2 5) = 3, + default c1 = 15.
        policy = max_degree_policy(star6)
        assert policy.ell_max[0] == 3 + THEOREM_21_C1

    def test_custom_c1(self, star6):
        assert max_degree_policy(star6, c1=4).ell_max[0] == 7

    def test_slack_loosens_bound(self, star6):
        tight = max_degree_policy(star6, c1=4)
        loose = max_degree_policy(star6, c1=4, slack=4.0)
        assert loose.ell_max[0] > tight.ell_max[0]

    def test_explicit_delta_upper(self, star6):
        policy = max_degree_policy(star6, c1=4, delta_upper=8)
        assert policy.ell_max[0] == 3 + 4

    def test_delta_upper_below_true_rejected(self, star6):
        with pytest.raises(ValueError, match="below"):
            max_degree_policy(star6, delta_upper=3)

    def test_edgeless_graph(self):
        policy = max_degree_policy(Graph(4), c1=2)
        assert all(e == 2 for e in policy.ell_max)

    def test_minimum_two(self):
        # ℓmax = 1 deadlocks (level 1 = ℓmax never beeps and never drops),
        # so every policy floors at 2.
        policy = max_degree_policy(Graph(3), c1=0)
        assert all(e >= 2 for e in policy.ell_max)

    def test_degenerate_ell_max_one_rejected(self):
        with pytest.raises(ValueError, match="deadlock"):
            explicit_policy([1, 3])


class TestOwnDegreePolicy:
    def test_per_vertex_values(self, star6):
        policy = own_degree_policy(star6, c1=6)
        # Hub: 2*ceil(log2 5) + 6 = 12; leaves: 2*0 + 6 = 6.
        assert policy.ell_max[0] == 12
        assert all(policy.ell_max[v] == 6 for v in range(1, 6))

    def test_default_constant(self, path4):
        policy = own_degree_policy(path4)
        assert policy.c1 == THEOREM_22_C1

    def test_degree_skew_gives_skewed_ellmax(self):
        g = gen.barabasi_albert(60, 2, seed=1)
        policy = own_degree_policy(g, c1=4)
        assert len(set(policy.ell_max)) > 1


class TestNeighborhoodDegreePolicy:
    def test_uses_deg2(self, star6):
        policy = neighborhood_degree_policy(star6, c1=5)
        d2 = deg2_all(star6)
        for v in star6.vertices():
            expected = 2 * math.ceil(math.log2(max(d2[v], 1))) + 5 if d2[v] > 1 else 5
            assert policy.ell_max[v] == max(1, expected)

    def test_default_constant(self, path4):
        assert neighborhood_degree_policy(path4).c1 == COROLLARY_23_C1

    def test_leaves_inherit_hub_degree(self, star6):
        policy = neighborhood_degree_policy(star6, c1=5)
        # deg2 is 5 for everyone in a star, so the policy is uniform.
        assert len(set(policy.ell_max)) == 1


class TestExplicitPolicies:
    def test_uniform(self, path4):
        policy = uniform_policy(path4, 7)
        assert policy.ell_max == (7, 7, 7, 7)

    def test_explicit(self):
        policy = explicit_policy([3, 5, 2])
        assert policy.ell_max == (3, 5, 2)
        assert policy.num_vertices == 3

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            explicit_policy([2, 0])


class TestPolicyApi:
    def test_max_ell_max(self):
        assert explicit_policy([3, 9, 2]).max_ell_max == 9

    def test_knowledge_carries_values(self, path4):
        policy = own_degree_policy(path4, c1=3)
        knowledge = policy.knowledge(path4)
        assert [k.ell_max for k in knowledge] == list(policy.ell_max)
        assert [k.degree for k in knowledge] == list(path4.degrees())

    def test_knowledge_size_mismatch(self, path4, star6):
        policy = own_degree_policy(path4)
        with pytest.raises(ValueError):
            policy.knowledge(star6)

    def test_lemma35_check(self, star6):
        # Theorem constants always satisfy Lemma 3.5's margin...
        assert max_degree_policy(star6).satisfies_lemma35(star6)
        # ...but a tiny uniform policy on a high-degree graph does not.
        assert not uniform_policy(star6, 2).satisfies_lemma35(star6)
