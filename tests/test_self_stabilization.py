"""Integration tests of the self-stabilization claims themselves.

These are the executable form of the paper's headline statements:
convergence from arbitrary configurations, closure of legality, and
recovery after mid-run transient faults — across graph families, both
algorithms, and all three knowledge variants.
"""

import numpy as np
import pytest

from repro.core.knowledge import (
    max_degree_policy,
    neighborhood_degree_policy,
    own_degree_policy,
)
from repro.core.vectorized import (
    SingleChannelEngine,
        simulate_single,
    simulate_two_channel,
)
from repro.graphs import generators as gen
from repro.graphs.mis import check_mis

from conftest import small_graph_zoo


class TestConvergenceFromArbitraryStates:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    @pytest.mark.parametrize(
        "policy_builder",
        [max_degree_policy, own_degree_policy],
        ids=["thm21", "thm22"],
    )
    def test_single_channel_all_families(self, name, graph, policy_builder):
        policy = policy_builder(graph, c1=4)
        for seed in range(3):
            result = simulate_single(
                graph, policy, seed=seed, arbitrary_start=True, max_rounds=20_000
            )
            assert result.stabilized, (name, seed)
            assert check_mis(graph, result.mis) is None, (name, seed)

    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_two_channel_all_families(self, name, graph):
        policy = neighborhood_degree_policy(graph, c1=4)
        for seed in range(3):
            result = simulate_two_channel(
                graph, policy, seed=seed, arbitrary_start=True, max_rounds=20_000
            )
            assert result.stabilized, (name, seed)
            assert check_mis(graph, result.mis) is None, (name, seed)


class TestWorstCaseInitialConfigurations:
    """Adversarial starting points, not just uniform random ones."""

    @pytest.fixture
    def graph(self):
        return gen.random_regular(60, 4, seed=1)

    def test_all_at_ell_max(self, graph):
        """Everyone silent ('a neighbor is in the MIS' everywhere)."""
        policy = max_degree_policy(graph, c1=4)
        engine = SingleChannelEngine(graph, policy, seed=2)
        engine.set_levels(np.asarray(policy.ell_max))
        result = simulate_single(
            graph, policy, seed=2, initial_levels=np.asarray(policy.ell_max),
            max_rounds=20_000,
        )
        assert result.stabilized
        assert check_mis(graph, result.mis) is None

    def test_all_prominent_fake_mis(self, graph):
        """Everyone believes it just joined the MIS (maximal conflict)."""
        policy = max_degree_policy(graph, c1=4)
        levels = -np.asarray(policy.ell_max)
        result = simulate_single(
            graph, policy, seed=3, initial_levels=levels, max_rounds=20_000
        )
        assert result.stabilized
        assert check_mis(graph, result.mis) is None

    def test_alternating_extremes(self, graph):
        policy = max_degree_policy(graph, c1=4)
        ell = np.asarray(policy.ell_max)
        levels = np.where(np.arange(graph.num_vertices) % 2 == 0, ell, -ell)
        result = simulate_single(
            graph, policy, seed=4, initial_levels=levels, max_rounds=20_000
        )
        assert result.stabilized

    def test_two_channel_all_zero(self, graph):
        """Every vertex claims MIS membership on channel 2."""
        policy = neighborhood_degree_policy(graph, c1=4)
        levels = np.zeros(graph.num_vertices, dtype=np.int64)
        result = simulate_two_channel(
            graph, policy, seed=5, initial_levels=levels, max_rounds=20_000
        )
        assert result.stabilized
        assert check_mis(graph, result.mis) is None


class TestClosureAndMonotonicity:
    def test_legality_closed_under_dynamics(self, er_graph):
        policy = max_degree_policy(er_graph, c1=4)
        result = simulate_single(er_graph, policy, seed=6, max_rounds=20_000)
        assert result.stabilized
        engine = SingleChannelEngine(er_graph, policy, seed=99)
        engine.set_levels(result.final_levels)
        mis_before = engine.mis_vertices()
        for _ in range(100):
            engine.step()
            assert engine.is_legal()
        assert engine.mis_vertices() == mis_before

    def test_stable_set_monotone_nondecreasing(self, er_graph):
        """S_t ⊆ S_{t+1} (paper, Section 3) — checked as set inclusion,
        not just cardinality."""
        policy = max_degree_policy(er_graph, c1=4)
        engine = SingleChannelEngine(er_graph, policy, seed=7)
        engine.randomize_levels()
        previous = engine.stable_mask().copy()
        for _ in range(300):
            engine.step()
            current = engine.stable_mask()
            assert bool(np.all(current[previous])), "a stable vertex destabilized"
            previous = current.copy()
            if engine.is_legal():
                break
        assert engine.is_legal()

    def test_mis_set_monotone_nondecreasing(self, er_graph):
        """I_t ⊆ I_{t+1}: confirmed members never leave."""
        policy = max_degree_policy(er_graph, c1=4)
        engine = SingleChannelEngine(er_graph, policy, seed=8)
        engine.randomize_levels()
        previous = engine.mis_mask().copy()
        for _ in range(300):
            engine.step()
            current = engine.mis_mask()
            assert bool(np.all(current[previous]))
            previous = current.copy()
            if engine.is_legal():
                break


class TestMidRunFaultRecovery:
    def test_recovery_time_comparable_to_fresh_run(self):
        """Recovery after full corruption is the same O(log n) process
        as from-scratch stabilization: compare the two distributions
        loosely (recovery within 4x the fresh median)."""
        graph = gen.erdos_renyi_mean_degree(150, 8.0, seed=9)
        policy = max_degree_policy(graph, c1=4)
        fresh = [
            simulate_single(graph, policy, seed=s, arbitrary_start=True).rounds
            for s in range(8)
        ]
        fresh_median = sorted(fresh)[len(fresh) // 2]

        for seed in range(4):
            engine = SingleChannelEngine(graph, policy, seed=100 + seed)
            # Stabilize, corrupt, count recovery rounds.
            while not engine.is_legal():
                engine.step()
            engine.randomize_levels()
            recovery = 0
            while not engine.is_legal():
                engine.step()
                recovery += 1
            assert recovery <= max(4 * fresh_median, 80)


STRESS_CHANNELS_SINGLE = ("lossy:0.1", "noisy:0.03", "unreliable:0.05,0.01")
STRESS_CHANNELS_TWO = ("lossy:0.05", "noisy:0.01", "unreliable:0.02,0.005")
STRESS_SCHEDULERS = ("drift:0.1", "adversarial:staggered,2")


class TestStabilizationUnderStress:
    """The headline theorem under unreliable channels and asynchrony.

    Noise grids sit below the empirically-recoverable thresholds
    (docs/robustness.md): Algorithm 2's spurious beep2 hears make it
    far more fragile than Algorithm 1, so its grid is gentler.
    Legality stays a *structural* MIS predicate — noise only touches
    in-round hears — so a stabilized result is a true MIS.
    """

    @pytest.mark.parametrize("channel", STRESS_CHANNELS_SINGLE)
    @pytest.mark.parametrize("scheduler", STRESS_SCHEDULERS)
    def test_single_channel_from_arbitrary_states(self, er_graph, channel, scheduler):
        policy = max_degree_policy(er_graph, c1=4)
        result = simulate_single(
            er_graph, policy, seed=11, arbitrary_start=True, max_rounds=60_000,
            channel=channel, scheduler=scheduler,
        )
        assert result.stabilized
        assert check_mis(er_graph, result.mis) is None

    @pytest.mark.parametrize("channel", STRESS_CHANNELS_TWO)
    @pytest.mark.parametrize("scheduler", STRESS_SCHEDULERS)
    def test_two_channel_from_arbitrary_states(self, er_graph, channel, scheduler):
        policy = neighborhood_degree_policy(er_graph, c1=4)
        result = simulate_two_channel(
            er_graph, policy, seed=12, arbitrary_start=True, max_rounds=120_000,
            channel=channel, scheduler=scheduler,
        )
        assert result.stabilized
        assert check_mis(er_graph, result.mis) is None

    @pytest.mark.parametrize("scheduler", STRESS_SCHEDULERS)
    def test_constant_state_under_stress(self, er_graph, scheduler):
        from repro.core.engines import ConstantStateEngine

        engine = ConstantStateEngine(
            er_graph, seed=13, channel="unreliable:0.05,0.01", scheduler=scheduler
        )
        engine.randomize()
        for _ in range(60_000):
            if engine.is_legal():
                break
            engine.step()
        assert engine.is_legal()
        assert check_mis(er_graph, engine.mis_vertices()) is None

    @pytest.mark.parametrize("channel", STRESS_CHANNELS_SINGLE)
    def test_batched_replicas_under_stress(self, er_graph, channel):
        from repro.core.engines import BatchedEngine

        policy = max_degree_policy(er_graph, c1=4)
        engine = BatchedEngine(
            er_graph, policy, replicas=3, seed=14,
            channel=channel, scheduler="drift:0.1",
        )
        engine.randomize_levels()
        for result in engine.run(max_rounds=60_000):
            assert result.stabilized
            assert check_mis(er_graph, result.mis) is None

    def test_worst_case_starts_under_stress(self):
        """The adversarial initial configurations of the class above,
        now with a lossy channel and drift on top."""
        graph = gen.random_regular(60, 4, seed=1)
        policy = max_degree_policy(graph, c1=4)
        ell = np.asarray(policy.ell_max)
        starts = {
            "all_silent": ell,
            "fake_mis": -ell,
            "alternating": np.where(np.arange(graph.num_vertices) % 2 == 0, ell, -ell),
        }
        for name, levels in starts.items():
            result = simulate_single(
                graph, policy, seed=15, initial_levels=levels, max_rounds=60_000,
                channel="lossy:0.1", scheduler="drift:0.1",
            )
            assert result.stabilized, name
            assert check_mis(graph, result.mis) is None, name

    def test_stress_recovery_time_is_same_order(self):
        """Mild noise degrades stabilization time by a bounded factor,
        not catastrophically (the degradation claim the robustness
        bench quantifies)."""
        graph = gen.erdos_renyi_mean_degree(120, 8.0, seed=9)
        policy = max_degree_policy(graph, c1=4)
        clean = [
            simulate_single(graph, policy, seed=s, arbitrary_start=True).rounds
            for s in range(6)
        ]
        noisy = [
            simulate_single(
                graph, policy, seed=s, arbitrary_start=True,
                max_rounds=200_000, channel="lossy:0.05",
            ).rounds
            for s in range(6)
        ]
        clean_median = sorted(clean)[3]
        noisy_median = sorted(noisy)[3]
        assert noisy_median <= max(10 * clean_median, 200)
