"""``update_structure`` must be byte-identical to a from-scratch build.

The incremental path patches only dirty CSR rows / dense cells / bitset
words, so the natural failure mode is a subtly different array (wrong
dtype, unsorted row, stale bit) that still *behaves* right on most
graphs.  Every test here therefore compares raw bytes of every derived
form — CSR (indptr/indices/data), dense, packed bitset, and the edge
array — against ``GraphStructure`` built fresh on the post-delta graph,
across the six delta patterns the serving workload produces:

1. single edge add,
2. single edge delete,
3. node add (both recycled-id and id-space-growing),
4. node delete (a hub: strips many edges at once),
5. hub rewire (bulk delta via ``diff_graphs``),
6. full rewire (→ the cost model's rebuild fallback).
"""

import numpy as np
import pytest

from repro.core.kernels import (
    GraphStructure,
    should_rebuild,
    structure_for,
    update_structure,
)
from repro.graphs import Graph, MutableTopology, diff_graphs
from repro.graphs.generators import erdos_renyi


def _graph(n=48, p=0.12, seed=3):
    return erdos_renyi(n, p, seed=seed)


def _materialized(graph):
    """A structure with every derived form realized."""
    structure = GraphStructure(graph)
    structure.edge_array
    structure.csr
    structure.dense
    structure.packed
    return structure


def assert_identical(patched, fresh):
    """Every derived form of ``patched`` equals ``fresh``, byte for byte."""
    assert patched.n == fresh.n
    assert patched.num_edges == fresh.num_edges
    assert patched.edge_array.dtype == fresh.edge_array.dtype
    assert patched.edge_array.tobytes() == fresh.edge_array.tobytes()
    for attr in ("indptr", "indices", "data"):
        got = getattr(patched.csr, attr)
        want = getattr(fresh.csr, attr)
        assert got.dtype == want.dtype, attr
        assert got.tobytes() == want.tobytes(), attr
    assert patched.dense.dtype == fresh.dense.dtype
    assert patched.dense.tobytes() == fresh.dense.tobytes()
    assert patched.packed.dtype == fresh.packed.dtype
    assert patched.packed.tobytes() == fresh.packed.tobytes()


def _check(structure, topo, delta):
    patched = update_structure(structure, delta)
    assert_identical(patched, GraphStructure(topo.snapshot()))
    return patched


def test_single_edge_add():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    u, v = next(
        (u, v)
        for u in range(graph.num_vertices)
        for v in range(u + 1, graph.num_vertices)
        if not topo.has_edge(u, v)
    )
    delta = topo.add_edge(u, v)
    assert not should_rebuild(structure, delta)
    _check(structure, topo, delta)


def test_single_edge_del():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    delta = topo.remove_edge(*topo.edges()[7])
    assert not should_rebuild(structure, delta)
    _check(structure, topo, delta)


def test_node_add_recycled_and_grown():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    # Tombstone a vertex, then add twice: first recycles (fixed n,
    # patch path), second grows the id space (rebuild path).
    structure = _check(structure, topo, topo.remove_node(5))
    vid, delta = topo.add_node()
    assert vid == 5 and not delta.grows
    structure = _check(structure, topo, delta)
    vid, delta = topo.add_node()
    assert vid == graph.num_vertices and delta.grows
    assert should_rebuild(structure, delta)
    _check(structure, topo, delta)


def test_node_del_hub():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    hub = max(range(graph.num_vertices), key=graph.degree)
    assert graph.degree(hub) >= 3
    delta = topo.remove_node(hub)
    assert len(delta.removed) == graph.degree(hub)
    _check(structure, topo, delta)


def test_hub_rewire_bulk_delta():
    graph = _graph()
    structure = _materialized(graph)
    hub = max(range(graph.num_vertices), key=graph.degree)
    old_nbrs = set(graph.neighbors(hub))
    new_nbrs = {
        v for v in range(graph.num_vertices)
        if v != hub and v not in old_nbrs
    }
    new_nbrs = set(sorted(new_nbrs)[: len(old_nbrs)])
    edges = {e for e in graph.edges if hub not in e}
    edges |= {(min(hub, v), max(hub, v)) for v in new_nbrs}
    target = Graph(graph.num_vertices, sorted(edges))
    delta = diff_graphs(graph, target)
    patched = update_structure(structure, delta)
    assert_identical(patched, GraphStructure(target))


def test_full_rewire_takes_rebuild_fallback():
    graph = _graph()
    structure = _materialized(graph)
    rng = np.random.default_rng(11)
    n = graph.num_vertices
    edges = set()
    while len(edges) < graph.num_edges:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    target = Graph(n, sorted(edges))
    delta = diff_graphs(graph, target)
    assert should_rebuild(structure, delta)
    patched = update_structure(structure, delta)
    assert_identical(patched, GraphStructure(target))


def test_chained_patches_stay_identical():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    rng = np.random.default_rng(4)
    for _ in range(25):
        if topo.num_edges and rng.random() < 0.5:
            edges = topo.edges()
            delta = topo.remove_edge(*edges[int(rng.integers(len(edges)))])
        else:
            u, v = (int(x) for x in rng.integers(0, topo.num_vertices, 2))
            if u == v or topo.has_edge(u, v):
                continue
            delta = topo.add_edge(u, v)
        structure = _check(structure, topo, delta)


def test_patch_preserves_laziness_and_source():
    """Only materialized forms are patched; the rest build lazily and
    still match; the source structure is never touched."""
    graph = _graph()
    topo = MutableTopology(graph)
    structure = GraphStructure(graph)
    structure.csr  # materialize CSR only
    csr_bytes = structure.csr.indices.tobytes()
    delta = topo.remove_edge(*topo.edges()[0])
    patched = update_structure(structure, delta)
    assert patched._dense is None and patched._packed is None
    assert_identical(patched, GraphStructure(topo.snapshot()))
    # Source structure unchanged (shared-structure read-only contract).
    assert structure._dense is None
    assert structure.csr.indices.tobytes() == csr_bytes
    assert structure.num_edges == graph.num_edges


def test_patched_structure_has_no_graph_until_rebuild():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    patched = update_structure(structure, topo.remove_edge(*topo.edges()[0]))
    assert patched.graph is None  # serving fast path: no Graph built
    # ... but passing the post-delta graph keys the result for caching.
    topo2 = MutableTopology(graph)
    delta = topo2.remove_edge(*topo2.edges()[0])
    keyed = update_structure(structure, delta, graph=topo2.snapshot())
    assert keyed.graph is not None
    assert_identical(keyed, GraphStructure(topo2.snapshot()))


def test_rebuild_fallback_routes_through_cache():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    _, delta = topo.add_node()  # grows -> rebuild
    patched = update_structure(structure, delta)
    assert patched is structure_for(topo.snapshot())  # cache hit


def test_bare_csr_structure_rejected():
    graph = _graph()
    bare = GraphStructure.from_csr(structure_for(graph).csr)
    topo = MutableTopology(graph)
    delta = topo.remove_edge(*topo.edges()[0])
    with pytest.raises(ValueError, match="bare CSR"):
        update_structure(bare, delta)


def test_graph_size_mismatch_rejected():
    graph = _graph()
    topo = MutableTopology(graph)
    structure = _materialized(graph)
    delta = topo.remove_edge(*topo.edges()[0])
    with pytest.raises(ValueError, match="vertices"):
        update_structure(structure, delta, graph=Graph(graph.num_vertices + 3, ()))
