"""Tests for the Section-3 analysis instrumentation."""

import pytest

from repro.core.instrumentation import Configuration, PlatinumTracker
from repro.core.knowledge import max_degree_policy
from repro.core.vectorized import SingleChannelEngine
from repro.graphs import generators as gen


def config(graph, levels, ell):
    return Configuration(graph, tuple(levels), tuple(ell))


class TestElementaryQuantities:
    def test_validation(self, path4):
        with pytest.raises(ValueError):
            config(path4, [0, 0, 0], [4, 4, 4, 4])
        with pytest.raises(ValueError):
            config(path4, [5, 0, 0, 0], [4, 4, 4, 4])

    def test_beep_probability(self, path4):
        c = config(path4, [-4, 0, 2, 4], [4] * 4)
        assert c.beep_probability(0) == 1.0
        assert c.beep_probability(2) == 0.25
        assert c.beep_probability(3) == 0.0

    def test_mu_and_prominent(self, path4):
        c = config(path4, [-4, 4, 1, 2], [4] * 4)
        assert c.prominent_vertices() == {0}
        assert c.mu(1) == pytest.approx(-1.0)  # min(-4/4, 1/4) = -1
        assert c.mu(3) == pytest.approx(0.25)

    def test_expected_beeping_neighbors(self, star6):
        # All leaves at level 1 (p = 1/2): hub expects 2.5 beeps.
        c = config(star6, [4, 1, 1, 1, 1, 1], [4] * 6)
        assert c.expected_beeping_neighbors(0) == pytest.approx(2.5)
        assert c.expected_beeping_neighbors(1) == pytest.approx(0.0)


class TestPlatinumRounds:
    def test_platinum_requires_prominent_in_closed_neighborhood(self, path4):
        c = config(path4, [-4, 4, 4, 4], [4] * 4)
        assert c.is_platinum_round_for(0)  # itself prominent
        assert c.is_platinum_round_for(1)  # neighbor prominent
        assert not c.is_platinum_round_for(2)
        assert not c.is_platinum_round_for(3)

    def test_no_prominent_vertices(self, path4):
        c = config(path4, [1, 2, 3, 4], [4] * 4)
        assert c.prominent_vertices() == frozenset()
        assert not any(c.is_platinum_round_for(v) for v in path4.vertices())


class TestLightAndGolden:
    def test_light_requires_positive_mu(self, path4):
        # Vertex 1 has a prominent neighbor (ℓ=-4 → μ ≤ 0): not light.
        c = config(path4, [-4, 1, 1, 1], [4] * 4)
        assert not c.is_light(1)
        assert c.is_light(3)

    def test_heavy_by_expected_beeps(self):
        # A hub with 24 level-1 neighbors has d = 12 > 10 and ℓ = 2 > 0.
        g = gen.star(25)
        levels = [2] + [1] * 24
        c = config(g, levels, [6] * 25)
        assert not c.is_light(0)
        # But a prominent hub is light regardless of d.
        c2 = config(g, [-6] + [1] * 24, [6] * 25)
        assert c2.is_light(0)

    def test_golden_condition_a(self, path4):
        # ℓ(v) ≤ 1 and d(v) tiny (all neighbors silent at ℓmax).
        c = config(path4, [1, 4, 4, 4], [4] * 4)
        assert c.is_golden_round_for(0)

    def test_golden_condition_b(self, star6):
        # Hub has light neighbors with substantial beep mass.
        c = config(star6, [4, 1, 1, 1, 1, 1], [4] * 6)
        assert c.expected_beeping_light_neighbors(0) > 0.001
        assert c.is_golden_round_for(0)

    def test_not_golden(self):
        g = gen.star(25)
        levels = [3] + [1] * 24  # d(hub) = 12, neighbors heavy? leaves are light
        c = config(g, levels, [6] * 25)
        # Leaves are light (their only neighbor, the hub, has level 3 > 0,
        # and their d = p(hub) small) so condition (b) holds for the hub.
        assert c.is_golden_round_for(0)
        # A leaf: its neighbor (hub) has d=12 and level 3 → heavy; leaf level 1,
        # d(leaf) = 1/8 ≤ 0.02? No: 0.125 > 0.02 → condition (a) fails, and
        # d^L(leaf) = 0 → not golden.
        assert not c.is_golden_round_for(1)


class TestEtaPotentials:
    def test_eta_zero_when_all_stable(self, path4):
        c = config(path4, [-4, 4, -4, 4], [4] * 4)
        assert c.eta(1) == 0.0
        assert c.eta_prime(1) == 0.0

    def test_eta_counts_unstable_neighbors(self, path4):
        c = config(path4, [1, 1, 1, 1], [4] * 4)
        assert c.eta(1) == pytest.approx(2 * 2.0 ** -4)
        assert c.eta(0) == pytest.approx(2.0 ** -4)

    def test_eta_prime_only_larger_ellmax(self):
        g = gen.path(3)
        c = Configuration(g, (1, 1, 1), (2, 4, 8))
        # Vertex 1: neighbors 0 (ℓmax 2 < 4) and 2 (ℓmax 8 > 4) → one term.
        assert c.eta_prime(1) == pytest.approx(2.0 ** -4)
        # Vertex 2 has no neighbor with larger ℓmax.
        assert c.eta_prime(2) == 0.0

    def test_theorem21_claim_eta_prime_zero_for_uniform(self, er_graph):
        """With uniform ℓmax (Theorem 2.1's setting) η′ ≡ 0."""
        c = config(er_graph, [1] * 80, [10] * 80)
        assert all(c.eta_prime(v) == 0.0 for v in er_graph.vertices())


class TestLemma31:
    def test_invariant_holds_after_warmup(self, er_graph):
        """Empirical Lemma 3.1: after max ℓmax rounds, every vertex has
        ℓ > 0 or μ > 0 — from *any* start, for any seed tested."""
        policy = max_degree_policy(er_graph, c1=4)
        for seed in range(5):
            engine = SingleChannelEngine(er_graph, policy, seed=seed)
            engine.randomize_levels()
            warmup = policy.max_ell_max + 1
            for _ in range(warmup):
                engine.step()
            for extra in range(30):
                c = Configuration(
                    er_graph, tuple(int(x) for x in engine.levels), policy.ell_max
                )
                assert c.lemma31_holds_everywhere(), f"seed={seed}, t=+{extra}"
                engine.step()


class TestPlatinumTracker:
    def test_counts_and_first_round(self, path4):
        tracker = PlatinumTracker(path4, [4] * 4)
        tracker.observe([1, 1, 1, 1])  # nothing prominent
        tracker.observe([-4, 1, 1, 1])  # 0 prominent → 0,1 platinum
        tracker.observe([-4, 1, 1, 1])
        assert tracker.rounds_seen == 3
        assert tracker.platinum_counts == [2, 2, 0, 0]
        assert tracker.first_platinum == [1, 1, -1, -1]
        assert tracker.platinum_fraction(0) == pytest.approx(2 / 3)

    def test_golden_tracking_optional(self, path4):
        tracker = PlatinumTracker(path4, [4] * 4, track_golden=True)
        tracker.observe([1, 4, 4, 4])
        assert tracker.golden_counts[0] == 1

    def test_empty_tracker_fraction(self, path4):
        tracker = PlatinumTracker(path4, [4] * 4)
        assert tracker.platinum_fraction(0) == 0.0
