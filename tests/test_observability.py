"""The observability layer: primitives, collectors, and zero perturbation.

Three layers of guarantees are pinned here:

* **Primitives** — counters/gauges/histograms, their snapshot/merge
  algebra (what crosses process boundaries), sink formats, and the
  injectable-clock profiler.
* **Zero perturbation** — attaching a collector to *any* engine backend
  or sweep executor changes nothing about the execution: same rounds,
  same MIS, bit-identical final levels, byte-identical samples.
* **Record correctness** — the per-round ``|I_t|`` / ``|S_t|`` /
  prominent counts agree with the independent pure-Python
  :class:`repro.core.instrumentation.Configuration` recomputed offline
  from a replayed trajectory, and the record stream is identical across
  every sweep executor.

Fixture matrix: cycle, star, ER and random-regular topologies × three
seeds, per the Section-3 observables the collectors expose.
"""

import json

import numpy as np
import pytest

from repro.analysis.measurements import StabilizationRounds, graph_for_config
from repro.analysis.sweep import run_sweep, spawn_sweep_seeds, supports_observation
from repro.core.engines.batched import simulate_batched
from repro.core.engines.single import SingleChannelEngine, simulate_single
from repro.core.engines.two_channel import simulate_two_channel
from repro.core.instrumentation import Configuration
from repro.core.runner import compute_mis, policy_for_variant
from repro.graphs import generators as gen
from repro.obs import (
    BatchedCollector,
    Counter,
    CsvSink,
    Gauge,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsOptions,
    MetricsRegistry,
    PhaseProfiler,
    RunCollector,
    StructureView,
    SweepRecorder,
    collect_sweep_metrics,
    collector_for_backend,
    make_sink,
)

# The issue's fixture matrix: four families × three seeds.
FIXTURES = [
    ("cycle", gen.cycle(16)),
    ("star", gen.star(12)),
    ("er", gen.erdos_renyi_mean_degree(24, 4.0, seed=11)),
    ("regular", gen.random_regular(18, 3, seed=12)),
]
SEEDS = (0, 1, 2)

BACKENDS = ("vectorized", "reference", "batched")


def _solo_collector(graph, policy, two_channel=False, **kwargs):
    view = StructureView.from_policy(graph, policy, two_channel=two_channel)
    return RunCollector(view, **kwargs)


# ======================================================================
# Metric primitives and the registry
# ======================================================================
class TestRegistry:
    def test_counter_is_monotone(self):
        c = Counter()
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_set_max(self):
        g = Gauge()
        g.set(5)
        g.set_max(3)
        assert g.value == 5
        g.set_max(9)
        assert g.value == 9

    def test_histogram_buckets_and_stats(self):
        h = Histogram()
        # bucket k holds 2^(k-1) < x <= 2^k; bucket 0 holds x <= 1.
        for value, bucket in [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (100, 7)]:
            assert Histogram.bucket_index(value) == bucket
            h.observe(value)
        assert h.count == 6
        assert h.minimum == 1 and h.maximum == 100
        assert h.mean == pytest.approx(115 / 6)
        assert h.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 7: 1}

    def test_metrics_keyed_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("beeps", channel=1) is reg.counter("beeps", channel=1)
        assert reg.counter("beeps", channel=1) is not reg.counter("beeps", channel=2)
        assert len(reg) == 2

    def test_snapshot_merge_algebra(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc(2)
        reg.gauge("peak").set(10)
        reg.histogram("rounds").observe(3.0)
        snap = reg.snapshot()

        merged = MetricsRegistry()
        merged.merge(snap)
        merged.merge(snap)
        # Counters add, gauges take the max, histogram buckets add.
        assert merged.counter("runs").value == 4
        assert merged.gauge("peak").value == 10
        h = merged.histogram("rounds")
        assert h.count == 2 and h.total == 6.0
        assert h.minimum == 3.0 and h.maximum == 3.0

    def test_snapshot_is_json_safe_and_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b", x=2).inc()
        reg.counter("a", x=1).inc()
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert [row["name"] for row in snap["counters"]] == ["a", "b"]
        assert snap == reg.snapshot()

    def test_format_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("runs_total").inc(3)
        reg.histogram("stabilization_rounds").observe(40.0)
        text = reg.format()
        assert "runs_total: 3" in text
        assert "stabilization_rounds: count=1 mean=40.0" in text


# ======================================================================
# Sinks
# ======================================================================
class TestSinks:
    def test_jsonl_sink_canonical_lines(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        sink.emit({"b": 2, "a": 1})
        sink.emit({"a": 3, "beeps": [1, 2]})
        sink.close()
        lines = open(path).read().splitlines()
        assert lines[0] == '{"a": 1, "b": 2}'  # keys sorted
        assert json.loads(lines[1]) == {"a": 3, "beeps": [1, 2]}
        assert sink.emitted == 2

    def test_csv_sink_header_pinned_and_nested_cells(self, tmp_path):
        path = str(tmp_path / "out.csv")
        sink = CsvSink(path)
        sink.emit({"round": 0, "beeps": [3, 1]})
        sink.emit({"round": 1, "beeps": [0, 0], "extra": "dropped"})
        sink.close()
        header, *rows = open(path).read().splitlines()
        assert header == "round,beeps"
        assert rows[0] == '0,"[3, 1]"'  # nested values JSON-encoded
        assert len(rows) == 2  # extra column silently ignored, not added

    def test_make_sink(self):
        assert isinstance(make_sink("memory"), InMemorySink)
        assert isinstance(make_sink("jsonl"), JsonlSink)
        assert isinstance(make_sink("csv"), CsvSink)
        with pytest.raises(ValueError, match="unknown sink"):
            make_sink("parquet")


# ======================================================================
# Profiler (injected clocks — no wall-clock dependence in tests)
# ======================================================================
class _FakeClock:
    """Advances by ``step`` on every read."""

    def __init__(self, step):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestProfiler:
    def test_phase_timing_with_injected_clocks(self):
        profiler = PhaseProfiler(wall=_FakeClock(2.0), cpu=_FakeClock(0.5))
        with profiler.phase("run"):
            pass
        with profiler.phase("run"):
            pass
        entry = profiler.phases["run"]
        assert entry == {"wall_s": 4.0, "cpu_s": 1.0, "calls": 2}

    def test_rounds_per_sec(self):
        profiler = PhaseProfiler(wall=_FakeClock(1.0), cpu=_FakeClock(1.0))
        with profiler.phase("run"):
            pass
        profiler.add_rounds(500)
        assert profiler.rounds_per_sec("run") == pytest.approx(500.0)
        assert profiler.rounds_per_sec("missing") is None

    def test_merge_adds_durations_and_maxes_peaks(self):
        a = PhaseProfiler(wall=_FakeClock(1.0), cpu=_FakeClock(1.0))
        b = PhaseProfiler(wall=_FakeClock(3.0), cpu=_FakeClock(3.0))
        with a.phase("measure"):
            pass
        with b.phase("measure"):
            pass
        a.add_rounds(10)
        b.add_rounds(20)
        a.observe_memory(100)
        b.observe_memory(50)
        a.merge(b.snapshot())
        assert a.phases["measure"]["wall_s"] == 4.0
        assert a.phases["measure"]["calls"] == 2
        assert a.rounds == 30
        assert a.peak_bytes == 100
        assert "rounds/s" in a.format()


# ======================================================================
# MetricsOptions
# ======================================================================
class TestMetricsOptions:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown sink"):
            MetricsOptions(sink="parquet")
        with pytest.raises(ValueError, match="every"):
            MetricsOptions(every=0)

    def test_from_cli(self):
        assert MetricsOptions.from_cli("off") is None
        assert MetricsOptions.from_cli("summary").sink == "memory"
        jsonl = MetricsOptions.from_cli("jsonl")
        assert (jsonl.sink, jsonl.path) == ("jsonl", "metrics.jsonl")
        csv_ = MetricsOptions.from_cli("csv", path="x.csv", every=5)
        assert (csv_.sink, csv_.path, csv_.every) == ("csv", "x.csv", 5)


# ======================================================================
# Zero perturbation: every engine backend
# ======================================================================
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name,graph", FIXTURES)
def test_collector_never_perturbs_backend(backend, name, graph):
    """Same seed → same outcome, with or without a collector attached."""
    policy = policy_for_variant(graph, "max_degree")
    for seed in SEEDS:
        bare = compute_mis(
            graph, seed=seed, arbitrary_start=True, engine=backend, policy=policy
        )
        registry = MetricsRegistry()
        collector = collector_for_backend(
            backend, graph, policy, "max_degree", registry=registry
        )
        observed = compute_mis(
            graph,
            seed=seed,
            arbitrary_start=True,
            engine=backend,
            policy=policy,
            collector=collector,
        )
        assert observed.mis == bare.mis, f"{backend}/{name}/{seed}"
        assert observed.rounds == bare.rounds, f"{backend}/{name}/{seed}"
        # One record per executed round, and the aggregates line up.
        assert len(collector.records) == bare.rounds
        assert registry.counter("runs_total").value == 1
        assert registry.counter("rounds_total").value == bare.rounds
        if bare.rounds:
            assert not collector.records[0]["legal"]


@pytest.mark.parametrize("name,graph", FIXTURES)
def test_collector_never_perturbs_two_channel(name, graph):
    policy = policy_for_variant(graph, "two_channel")
    for seed in SEEDS:
        bare = simulate_two_channel(graph, policy, seed=seed, arbitrary_start=True)
        collector = _solo_collector(graph, policy, two_channel=True)
        observed = simulate_two_channel(
            graph, policy, seed=seed, arbitrary_start=True, collector=collector
        )
        assert observed.rounds == bare.rounds
        assert np.array_equal(observed.final_levels, bare.final_levels)
        # Two channels per record on this variant.
        assert all(len(r["beeps"]) == 2 for r in collector.records)


# ======================================================================
# Differential: batched replica series ≡ solo series
# ======================================================================
@pytest.mark.parametrize("name,graph", FIXTURES)
def test_batched_series_bit_identical_to_solo(name, graph):
    policy = policy_for_variant(graph, "max_degree")
    children = np.random.SeedSequence(17).spawn(3)
    batched = BatchedCollector(
        StructureView.from_policy(graph, policy), replicas=len(children)
    )
    simulate_batched(
        graph,
        policy,
        seed_sequences=children,
        algorithm="single",
        arbitrary_start=True,
        collector=batched,
    )
    for k, child in enumerate(children):
        solo = _solo_collector(graph, policy)
        simulate_single(
            graph,
            policy,
            seed=np.random.default_rng(child),
            arbitrary_start=True,
            collector=solo,
        )
        for column in ("i_size", "s_size", "prominent", "legal", "beeps"):
            assert solo.series(column) == batched.series(column, k), (
                f"{name}: replica {k} column {column!r}"
            )


def test_batched_two_channel_beep2_counts():
    """Channel-2 beeps (deterministic, ℓ==0) survive the batched path."""
    graph = gen.erdos_renyi_mean_degree(24, 4.0, seed=11)
    policy = policy_for_variant(graph, "two_channel")
    children = np.random.SeedSequence(23).spawn(2)
    batched = BatchedCollector(
        StructureView.from_policy(graph, policy, two_channel=True),
        replicas=len(children),
    )
    simulate_batched(
        graph,
        policy,
        seed_sequences=children,
        algorithm="two_channel",
        arbitrary_start=True,
        collector=batched,
    )
    for k, child in enumerate(children):
        solo = _solo_collector(graph, policy, two_channel=True)
        simulate_two_channel(
            graph,
            policy,
            seed=np.random.default_rng(child),
            arbitrary_start=True,
            collector=solo,
        )
        assert solo.series("beeps") == batched.series("beeps", k)


# ======================================================================
# Zero perturbation + executor-identical records: the sweep paths
# ======================================================================
SWEEP_CONFIGS = [{"family": "er", "n": 24}, {"family": "cycle", "n": 20}]
MEASURE = StabilizationRounds()


def _samples(result):
    return [list(cell.samples) for cell in result.cells]


def test_sweep_metrics_zero_perturbation_across_executors():
    baseline = run_sweep(
        SWEEP_CONFIGS, MEASURE, repetitions=3, master_seed=3, executor="serial"
    )
    streams = []
    for executor, jobs in [
        ("serial", 1),
        ("process", 2),
        ("batched", 1),
        ("batched", 2),
    ]:
        observed = run_sweep(
            SWEEP_CONFIGS,
            MEASURE,
            repetitions=3,
            master_seed=3,
            executor=executor,
            jobs=jobs,
            metrics=MetricsOptions(),
        )
        assert _samples(observed) == _samples(baseline), (executor, jobs)
        metrics = observed.metrics
        assert metrics.registry.counter("runs_total").value == 6
        assert metrics.registry.counter("rounds_total").value == sum(
            sum(cell.samples) for cell in baseline.cells
        )
        streams.append(metrics.records)
    # The merged record stream is canonical: identical for every executor.
    assert all(stream == streams[0] for stream in streams[1:])
    # Records carry the config labels and repetition index.
    first = streams[0][0]
    assert first["family"] in ("er", "cycle") and "rep" in first and "round" in first


def test_sweep_metrics_requires_observed_measurement():
    def plain(config, rng):
        return float(rng.random())

    assert supports_observation(MEASURE)
    assert not supports_observation(plain)
    with pytest.raises(ValueError, match="measure_observed"):
        run_sweep(
            SWEEP_CONFIGS, plain, repetitions=2, metrics=MetricsOptions()
        )


# ======================================================================
# Record cadence and optional level histogram
# ======================================================================
def test_every_thins_records_but_not_aggregates():
    graph = gen.erdos_renyi_mean_degree(24, 4.0, seed=11)
    policy = policy_for_variant(graph, "max_degree")
    dense_reg, sparse_reg = MetricsRegistry(), MetricsRegistry()
    dense = _solo_collector(graph, policy, registry=dense_reg)
    sparse = _solo_collector(graph, policy, registry=sparse_reg, every=3)
    for collector in (dense, sparse):
        simulate_single(
            graph, policy, seed=9, arbitrary_start=True, collector=collector
        )
    assert all(r["round"] % 3 == 0 for r in sparse.records)
    assert sparse.records == [r for r in dense.records if r["round"] % 3 == 0]
    # Beep totals accumulate every round regardless of the cadence.
    assert sparse.beep_totals == dense.beep_totals
    assert sparse_reg.snapshot() == dense_reg.snapshot()


def test_level_histogram_partitions_the_vertices():
    graph = gen.cycle(16)
    policy = policy_for_variant(graph, "max_degree")
    collector = _solo_collector(graph, policy, level_hist=True)
    simulate_single(graph, policy, seed=1, arbitrary_start=True, collector=collector)
    ell = int(np.asarray(policy.ell_max).max())
    for record in collector.records:
        hist = record["level_hist"]
        assert sum(count for _, count in hist) == graph.num_vertices
        assert all(-ell <= level <= ell for level, _ in hist)


# ======================================================================
# Offline recompute: records vs repro.core.instrumentation.Configuration
# ======================================================================
def test_jsonl_records_match_offline_configuration(tmp_path):
    """The acceptance check: replay the trajectory independently and
    recompute |I_t| / |S_t| / |PM_t| with the pure-Python instrumentation
    on sampled rounds; they must equal the JSONL records."""
    config = {"family": "er", "n": 24}
    path = str(tmp_path / "metrics.jsonl")
    result = run_sweep(
        [config],
        MEASURE,
        repetitions=2,
        master_seed=9,
        executor="serial",
        metrics=MetricsOptions(sink="jsonl", path=path),
    )
    records = [json.loads(line) for line in open(path)]
    assert records == result.metrics.records  # file round-trips exactly

    graph = graph_for_config(config)
    policy = policy_for_variant(graph, "max_degree")
    ell_max = tuple(int(x) for x in np.asarray(policy.ell_max))
    seeds = spawn_sweep_seeds(9, 1, 2)[0]
    for rep, child in enumerate(seeds):
        rep_records = {
            r["round"]: r for r in records if r["rep"] == rep
        }
        rounds = len(rep_records)
        assert rounds == result.cells[0].samples[rep]
        # Independent replay: the engine's exact seeding and start state.
        engine = SingleChannelEngine(graph, policy, seed=np.random.default_rng(child))
        engine.randomize_levels()
        for round_index in range(rounds):
            if round_index % max(1, rounds // 6) == 0:  # sampled rounds
                snapshot = Configuration(
                    graph, tuple(int(x) for x in engine.levels), ell_max
                )
                sets = snapshot.stable_sets()
                record = rep_records[round_index]
                assert record["i_size"] == len(sets.mis)
                assert record["s_size"] == len(sets.stable)
                assert record["prominent"] == len(snapshot.prominent_vertices())
            engine.step()


# ======================================================================
# Consistency with the legacy TraceRecorder
# ======================================================================
def test_run_collector_consistent_with_trace_recorder():
    """Same network, two observers: the legacy TraceRecorder series and
    the RunCollector records must tell one story (the single-channel
    output map reports IN_MIS iff prominent, so mis_size ≡ prominent)."""
    from repro.beeping.network import BeepingNetwork
    from repro.beeping.simulator import run_until_stable
    from repro.beeping.trace import TraceRecorder
    from repro.core.algorithm_single import SelfStabilizingMIS

    graph = gen.erdos_renyi_mean_degree(24, 4.0, seed=11)
    policy = policy_for_variant(graph, "max_degree")

    def network():
        return BeepingNetwork(
            graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=5
        )

    collector = _solo_collector(graph, policy)
    result = run_until_stable(network(), max_rounds=5000, collector=collector)
    assert result.stabilized

    trace = TraceRecorder().run(network(), result.rounds)
    assert collector.series("legal") == trace.series("legal")
    assert collector.series("prominent") == trace.series("mis_size")
    assert collector.series("beeps") == [
        list(b) for b in trace.series("beeps_per_channel")
    ]


# ======================================================================
# Worker/parent plumbing
# ======================================================================
def test_sweep_recorder_payload_merges_like_in_process():
    graph = gen.cycle(16)
    policy = policy_for_variant(graph, "max_degree")
    recorder = SweepRecorder(base_labels={"family": "cycle"})
    collector = recorder.solo_collector(graph, policy, extra_labels={"rep": 0})
    outcome = simulate_single(
        graph, policy, seed=2, arbitrary_start=True, collector=collector
    )
    payload = recorder.payload()
    json.dumps(payload)  # picklable AND json-safe

    merged = collect_sweep_metrics([payload, payload], MetricsOptions())
    assert merged.registry.counter("runs_total").value == 2
    assert len(merged.records) == 2 * outcome.rounds
    assert merged.records[0]["family"] == "cycle"
    assert merged.path is None and merged.emitted == 0


def test_collect_sweep_metrics_canonicalizes_record_order():
    """Interleaved (batched-style) records sort to (rep, round) order."""
    records = [
        {"rep": 1, "round": 0},
        {"rep": 0, "round": 0},
        {"rep": 1, "round": 1},
        {"rep": 0, "round": 1},
    ]
    payload = {
        "registry": MetricsRegistry().snapshot(),
        "records": records,
        "profile": PhaseProfiler().snapshot(),
    }
    merged = collect_sweep_metrics([payload], MetricsOptions())
    assert merged.records == [
        {"rep": 0, "round": 0},
        {"rep": 0, "round": 1},
        {"rep": 1, "round": 0},
        {"rep": 1, "round": 1},
    ]


def test_collector_guards_against_misuse():
    graph = gen.cycle(8)
    policy = policy_for_variant(graph, "max_degree")
    collector = _solo_collector(graph, policy)
    with pytest.raises(RuntimeError, match="observe_structure"):
        collector.observe_beeps(np.zeros(8, dtype=bool))
    with pytest.raises(ValueError, match="every"):
        _solo_collector(graph, policy, every=0)
