"""Unit & integration tests for Algorithm 1 (SelfStabilizingMIS)."""

import numpy as np
import pytest

from repro.beeping.algorithm import LocalKnowledge, NodeOutput
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import max_degree_policy, uniform_policy
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis

from conftest import small_graph_zoo


K = LocalKnowledge(ell_max=5)
ALG = SelfStabilizingMIS()


class TestStateLifecycle:
    def test_fresh_state_is_level_one(self):
        assert ALG.fresh_state(K) == 1

    def test_missing_ell_max_rejected(self):
        with pytest.raises(ValueError, match="ell_max"):
            ALG.fresh_state(LocalKnowledge())
        with pytest.raises(ValueError, match="ell_max"):
            ALG.fresh_state(LocalKnowledge(ell_max=0))

    def test_random_state_covers_universe(self):
        rng = np.random.default_rng(0)
        samples = {ALG.random_state(K, rng) for _ in range(2000)}
        assert samples == set(range(-5, 6))


class TestRoundBehaviour:
    def test_beep_decision_thresholds(self):
        # Level 1 → p = 1/2: u just below beeps, just above doesn't.
        assert ALG.beeps(1, K, 0.499) == (True,)
        assert ALG.beeps(1, K, 0.5) == (False,)
        # Prominent → always beep.
        assert ALG.beeps(-2, K, 0.999) == (True,)
        assert ALG.beeps(0, K, 0.999) == (True,)
        # At ℓmax → never beep.
        assert ALG.beeps(5, K, 0.0) == (False,)

    def test_step_delegates_to_update_rule(self):
        assert ALG.step(2, (False,), (True,), K) == 3
        assert ALG.step(2, (True,), (False,), K) == -5
        assert ALG.step(2, (False,), (False,), K) == 1

    def test_output_map(self):
        assert ALG.output(-5, K) is NodeOutput.IN_MIS
        assert ALG.output(0, K) is NodeOutput.IN_MIS
        assert ALG.output(5, K) is NodeOutput.NOT_IN_MIS
        assert ALG.output(3, K) is NodeOutput.UNDECIDED


class TestSmallGraphDynamics:
    def test_single_vertex_stabilizes_fast(self):
        g = Graph(1)
        policy = uniform_policy(g, 3)
        network = BeepingNetwork(g, ALG, policy.knowledge(g), seed=1)
        result = run_until_stable(network, max_rounds=50)
        assert result.stabilized
        assert result.mis == {0}

    def test_two_vertices_elect_exactly_one(self):
        g = Graph(2, [(0, 1)])
        policy = uniform_policy(g, 3)
        for seed in range(10):
            network = BeepingNetwork(g, ALG, policy.knowledge(g), seed=seed)
            result = run_until_stable(network, max_rounds=500)
            assert result.stabilized
            assert len(result.mis) == 1

    def test_triangle_elects_exactly_one(self, triangle):
        policy = uniform_policy(triangle, 4)
        for seed in range(10):
            network = BeepingNetwork(
                triangle, ALG, policy.knowledge(triangle), seed=seed
            )
            result = run_until_stable(network, max_rounds=800)
            assert result.stabilized
            assert len(result.mis) == 1

    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_stabilizes_to_valid_mis_from_fresh_start(self, name, graph):
        policy = max_degree_policy(graph, c1=4)
        network = BeepingNetwork(graph, ALG, policy.knowledge(graph), seed=7)
        result = run_until_stable(network, max_rounds=5000)
        assert result.stabilized, name
        assert check_mis(graph, result.mis) is None, name

    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_stabilizes_from_arbitrary_start(self, name, graph):
        policy = max_degree_policy(graph, c1=4)
        algorithm = SelfStabilizingMIS()
        rng = np.random.default_rng(13)
        knowledge = policy.knowledge(graph)
        initial = [algorithm.random_state(k, rng) for k in knowledge]
        network = BeepingNetwork(
            graph, algorithm, knowledge, seed=rng, initial_states=initial
        )
        result = run_until_stable(network, max_rounds=5000)
        assert result.stabilized, name
        assert check_mis(graph, result.mis) is None, name


class TestStableSetsAccessor:
    def test_stable_sets_match_module_function(self, path4):
        policy = uniform_policy(path4, 4)
        knowledge = policy.knowledge(path4)
        levels = [-4, 4, -4, 4]
        sets = ALG.stable_sets(path4, levels, knowledge)
        assert sets.mis == {0, 2}
        assert sets.stable == {0, 1, 2, 3}

    def test_mis_vertices_uses_output(self, path4):
        policy = uniform_policy(path4, 4)
        knowledge = policy.knowledge(path4)
        states = [-4, 4, 0, 2]
        # Output-level membership counts all prominent vertices.
        assert ALG.mis_vertices(states, knowledge) == {0, 2}
