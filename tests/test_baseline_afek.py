"""Tests for the Afek-style doubling-probability baseline."""

import pytest

from repro.baselines.afek import ACTIVE, AfekState, AfekStylePhaseMIS, IN_MIS, OUT
from repro.beeping.algorithm import LocalKnowledge, NodeOutput
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.graphs import generators as gen
from repro.graphs.mis import check_mis

from conftest import small_graph_zoo


def knowledge_for(graph, n_upper=None):
    n_upper = n_upper or max(graph.num_vertices, 2)
    return [LocalKnowledge(n_upper=n_upper) for _ in graph.vertices()]


def make_network(graph, seed=0, n_upper=None, beta=2.0):
    return BeepingNetwork(
        graph, AfekStylePhaseMIS(beta=beta), knowledge_for(graph, n_upper), seed=seed
    )


class TestScheduleGeometry:
    def test_knowledge_required(self):
        alg = AfekStylePhaseMIS()
        with pytest.raises(ValueError, match="n_upper"):
            alg.fresh_state(LocalKnowledge())

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            AfekStylePhaseMIS(beta=0)

    def test_schedule_is_theta_log_squared(self):
        alg = AfekStylePhaseMIS(beta=2.0)
        k = LocalKnowledge(n_upper=1024)  # log2 = 10
        assert alg.steps_per_epoch(k) == 20
        assert alg.num_epochs(k) == 11
        assert alg.schedule_length(k) == 220

    def test_probability_doubles_per_epoch_capped(self):
        alg = AfekStylePhaseMIS(beta=1.0)
        k = LocalKnowledge(n_upper=64)  # 6 bits → steps_per_epoch = 6
        p0 = alg.exchange_probability(0, k)
        p1 = alg.exchange_probability(6, k)
        assert p1 == pytest.approx(2 * p0)
        # Deep epochs cap at 1/2.
        assert alg.exchange_probability(6 * 6, k) == 0.5

    def test_position_wraps(self):
        alg = AfekStylePhaseMIS(beta=1.0)
        k = LocalKnowledge(n_upper=4)
        last = alg.schedule_length(k) - 1
        state = AfekState(ACTIVE, last, 1)
        after = alg.step(state, (False,), (True,), k)
        assert after.position == 0


class TestCorrectness:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_terminates_with_valid_mis(self, name, graph):
        network = make_network(graph, seed=2)
        result = run_until_stable(network, max_rounds=20_000)
        assert result.stabilized, name
        assert check_mis(graph, result.mis) is None, name

    def test_loose_upper_bound_still_correct(self, er_graph):
        network = make_network(er_graph, seed=3, n_upper=10_000)
        result = run_until_stable(network, max_rounds=60_000)
        assert result.stabilized
        assert check_mis(er_graph, result.mis) is None

    def test_outputs(self):
        alg = AfekStylePhaseMIS()
        k = LocalKnowledge(n_upper=8)
        assert alg.output(AfekState(IN_MIS, 0, 0), k) is NodeOutput.IN_MIS
        assert alg.output(AfekState(OUT, 0, 0), k) is NodeOutput.NOT_IN_MIS
        assert alg.output(AfekState(ACTIVE, 0, 0), k) is NodeOutput.UNDECIDED


class TestShapeVsJeavons:
    def test_slower_than_jeavons_on_same_graph(self):
        """The doubling schedule starts near p = 1/N, so it takes a
        log-factor longer than Jeavons — the E6 shape claim."""
        from repro.baselines.jeavons import JeavonsMIS

        graph = gen.erdos_renyi_mean_degree(100, 6.0, seed=4)
        afek_rounds, jeavons_rounds = [], []
        for seed in range(3):
            net = make_network(graph, seed=seed)
            afek_rounds.append(run_until_stable(net, max_rounds=60_000).rounds)
            jnet = BeepingNetwork(
                graph,
                JeavonsMIS(),
                [LocalKnowledge() for _ in graph.vertices()],
                seed=seed,
            )
            jeavons_rounds.append(run_until_stable(jnet, max_rounds=4000).rounds)
        assert min(afek_rounds) > max(jeavons_rounds)
