"""Differential byte-identity tests for the stress-model wiring.

The tentpole contract (docs/robustness.md): with the default perfect
channel + synchronous scheduler, every engine executes the historical
step **operation for operation** — the stress plumbing must be
invisible, byte for byte, on the default path.  These tests pin that
three ways:

* a hand-rolled oracle of the *pre-change* step loop (plain numpy on
  the raw adjacency, no engine machinery) is compared per round against
  today's engines, across kernels and seeds;
* the defaults are compared against explicitly-passed
  ``perfect`` / ``synchronous`` specs, across engines and executors;
* under *noise*, solo and batched replicas must still agree bit for
  bit (the per-replica seed-tree mirroring), and attaching a collector
  must not perturb the trajectory.
"""

import numpy as np
import pytest

from repro.analysis.measurements import StabilizationRounds
from repro.analysis.sweep import run_sweep
from repro.core.engines import (
    BatchedEngine,
    ConstantStateEngine,
    SingleChannelEngine,
    TwoChannelEngine,
)
from repro.core.engines.constant_state import simulate_constant_state
from repro.core.engines.base import MAX_EXPONENT
from repro.core.kernels import structure_for
from repro.core.runner import compute_mis, policy_for_variant
from repro.devtools.seeding import spawn_children
from repro.graphs.generators import by_name
from repro.obs import RunCollector, StructureView

KERNELS = ("auto", "sparse", "dense", "bitset")
ORACLE_ROUNDS = 60


def _graph(n=48, seed=0):
    return by_name("er", n, seed=seed)


def _hear(adjacency, active):
    return (adjacency @ active.astype(np.int64)) > 0


# ----------------------------------------------------------------------
# Hand-rolled pre-change oracles (the historical step loops, verbatim)
# ----------------------------------------------------------------------
def _oracle_single(graph, policy, seed, rounds):
    adjacency = structure_for(graph).csr
    ell_max = np.asarray(policy.ell_max, dtype=np.int64)
    rng = np.random.default_rng(seed)
    floor = -ell_max
    span = ell_max - floor + 1
    levels = rng.integers(0, span, size=graph.num_vertices).astype(np.int64) + floor
    yield levels
    for _ in range(rounds):
        draws = rng.random(graph.num_vertices)
        exponent = np.clip(levels, 0, MAX_EXPONENT).astype(np.float64)
        p = np.power(2.0, -exponent)
        p[levels <= 0] = 1.0
        p[levels >= ell_max] = 0.0
        beeps = draws < p
        heard = _hear(adjacency, beeps)
        up = np.minimum(levels + 1, ell_max)
        down = np.maximum(levels - 1, 1)
        levels = np.where(heard, up, np.where(beeps, -ell_max, down))
        yield levels


def _oracle_two_channel(graph, policy, seed, rounds):
    adjacency = structure_for(graph).csr
    ell_max = np.asarray(policy.ell_max, dtype=np.int64)
    rng = np.random.default_rng(seed)
    span = ell_max + 1
    levels = rng.integers(0, span, size=graph.num_vertices).astype(np.int64)
    yield levels
    for _ in range(rounds):
        draws = rng.random(graph.num_vertices)
        exponent = np.clip(levels, 0, MAX_EXPONENT).astype(np.float64)
        p1 = np.power(2.0, -exponent)
        active = (levels > 0) & (levels < ell_max)
        beep1 = active & (draws < p1)
        beep2 = levels == 0
        heard1 = _hear(adjacency, beep1)
        heard2 = _hear(adjacency, beep2)
        up = np.minimum(levels + 1, ell_max)
        down = np.maximum(levels - 1, 1)
        levels = np.where(
            heard2,
            ell_max,
            np.where(heard1, up, np.where(beep1, 0, np.where(~beep2, down, levels))),
        )
        yield levels


def _oracle_constant_state(graph, seed, rounds):
    adjacency = structure_for(graph).csr
    rng = np.random.default_rng(seed)
    in_mis = rng.integers(0, 2, size=graph.num_vertices).astype(bool)
    yield in_mis
    for _ in range(rounds):
        draws = rng.random(graph.num_vertices)
        heard = _hear(adjacency, in_mis)
        coin = draws < 0.5
        retreat = in_mis & heard & coin
        rejoin = ~in_mis & ~heard & coin
        in_mis = (in_mis & ~retreat) | rejoin
        yield in_mis


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", (0, 7))
def test_single_engine_matches_pre_change_oracle(kernel, seed):
    graph = _graph()
    policy = policy_for_variant(graph, "max_degree")
    engine = SingleChannelEngine(graph, policy, seed=seed, kernel=kernel)
    engine.randomize_levels()
    oracle = _oracle_single(graph, policy, seed, ORACLE_ROUNDS)
    np.testing.assert_array_equal(engine.levels, next(oracle))
    for expected in oracle:
        engine.step()
        np.testing.assert_array_equal(engine.levels, expected)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", (0, 7))
def test_two_channel_engine_matches_pre_change_oracle(kernel, seed):
    graph = _graph()
    policy = policy_for_variant(graph, "two_channel")
    engine = TwoChannelEngine(graph, policy, seed=seed, kernel=kernel)
    engine.randomize_levels()
    oracle = _oracle_two_channel(graph, policy, seed, ORACLE_ROUNDS)
    np.testing.assert_array_equal(engine.levels, next(oracle))
    for expected in oracle:
        engine.step()
        np.testing.assert_array_equal(engine.levels, expected)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", (0, 7))
def test_constant_state_engine_matches_pre_change_oracle(kernel, seed):
    graph = _graph()
    engine = ConstantStateEngine(graph, seed=seed, kernel=kernel)
    engine.randomize()
    oracle = _oracle_constant_state(graph, seed, ORACLE_ROUNDS)
    np.testing.assert_array_equal(engine.in_mis, next(oracle))
    for expected in oracle:
        engine.step()
        np.testing.assert_array_equal(engine.in_mis, expected)


# ----------------------------------------------------------------------
# Defaults ≡ explicit perfect + synchronous
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ("max_degree", "own_degree", "two_channel"))
def test_explicit_perfect_synchronous_is_byte_identical(variant):
    graph = _graph()
    default = compute_mis(graph, variant=variant, seed=11, arbitrary_start=True)
    explicit = compute_mis(
        graph, variant=variant, seed=11, arbitrary_start=True,
        channel="perfect", scheduler="synchronous",
    )
    assert default.rounds == explicit.rounds
    assert default.mis == explicit.mis


def test_explicit_perfect_synchronous_batched_matches_default():
    graph = _graph()
    policy = policy_for_variant(graph, "max_degree")
    runs = {}
    for key, extra in (
        ("default", {}),
        ("explicit", {"channel": "perfect", "scheduler": "synchronous"}),
    ):
        engine = BatchedEngine(graph, policy, replicas=3, seed=5, **extra)
        engine.randomize_levels()
        runs[key] = engine.run(max_rounds=50_000)
    assert [r.rounds for r in runs["default"]] == [r.rounds for r in runs["explicit"]]
    for a, b in zip(runs["default"], runs["explicit"]):
        np.testing.assert_array_equal(a.final_levels, b.final_levels)


def test_executor_matrix_identical_samples_on_perfect_defaults():
    configs = [{"family": "er", "n": 32}, {"family": "er", "n": 48}]
    kwargs = dict(repetitions=4, master_seed=3)
    sweeps = {
        "serial-default": run_sweep(
            configs, StabilizationRounds(), executor="serial", **kwargs
        ),
        "serial-explicit": run_sweep(
            configs,
            StabilizationRounds(channel="perfect", scheduler="synchronous"),
            executor="serial", **kwargs,
        ),
        "batched-explicit": run_sweep(
            configs,
            StabilizationRounds(channel="perfect", scheduler="synchronous"),
            executor="batched", **kwargs,
        ),
        "process-explicit": run_sweep(
            configs,
            StabilizationRounds(channel="perfect", scheduler="synchronous"),
            executor="process", jobs=2, **kwargs,
        ),
    }
    reference = sweeps.pop("serial-default")
    for name, sweep in sweeps.items():
        for ref_cell, cell in zip(reference.cells, sweep.cells):
            assert ref_cell.samples == cell.samples, name


def test_executor_matrix_identical_samples_under_stress():
    configs = [{"family": "er", "n": 40}]
    measure = StabilizationRounds(
        channel="unreliable:0.05,0.01", scheduler="drift:0.1"
    )
    kwargs = dict(repetitions=4, master_seed=9)
    serial = run_sweep(configs, measure, executor="serial", **kwargs)
    batched = run_sweep(configs, measure, executor="batched", **kwargs)
    process = run_sweep(configs, measure, executor="process", jobs=2, **kwargs)
    assert serial.cells[0].samples == batched.cells[0].samples
    assert serial.cells[0].samples == process.cells[0].samples


# ----------------------------------------------------------------------
# Solo vs batched bit-identity *under noise*
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ("single", "two_channel"))
def test_solo_and_batched_replicas_agree_under_stress(algorithm):
    graph = _graph(40)
    variant = "two_channel" if algorithm == "two_channel" else "max_degree"
    policy = policy_for_variant(graph, variant)
    stress = dict(channel="unreliable:0.05,0.01", scheduler="drift:0.1")
    replicas = 3

    batched = BatchedEngine(
        graph, policy, replicas=replicas, seed=21, algorithm=algorithm, **stress
    )
    batched.randomize_levels()
    batch_results = batched.run(max_rounds=50_000)

    engine_cls = TwoChannelEngine if algorithm == "two_channel" else SingleChannelEngine
    for child, batch_result in zip(spawn_children(21, replicas), batch_results):
        solo = engine_cls(
            graph, policy, seed=np.random.default_rng(child), **stress
        )
        solo.randomize_levels()
        solo_result = solo.until_stable(max_rounds=50_000)
        assert solo_result.rounds == batch_result.rounds
        np.testing.assert_array_equal(
            solo_result.final_levels, batch_result.final_levels
        )


# ----------------------------------------------------------------------
# Collector zero-perturbation and channel counters under noise
# ----------------------------------------------------------------------
def test_collector_does_not_perturb_stressed_runs():
    graph = _graph(40)
    policy = policy_for_variant(graph, "max_degree")
    stress = dict(channel="lossy:0.05", scheduler="drift:0.1")

    bare = SingleChannelEngine(graph, policy, seed=4, **stress)
    bare.randomize_levels()
    bare_result = bare.until_stable(max_rounds=50_000)

    observed = SingleChannelEngine(graph, policy, seed=4, **stress)
    observed.randomize_levels()
    collector = RunCollector(StructureView.from_engine(observed))
    observed_result = observed.until_stable(max_rounds=50_000, collector=collector)

    assert bare_result.rounds == observed_result.rounds
    np.testing.assert_array_equal(
        bare_result.final_levels, observed_result.final_levels
    )
    # The records carry the per-round channel counters, and they sum to
    # the channel's lifetime totals (every round was emitted).
    assert all("dropped" in r and "spurious" in r for r in collector.records)
    assert sum(r["dropped"] for r in collector.records) == observed.channel.drops_total
    assert observed.channel.drops_total > 0  # the stress actually bit
    assert sum(r["spurious"] for r in collector.records) == 0  # lossy only drops


# ----------------------------------------------------------------------
# Round-kernel ineligibility → silent step-loop fallback (byte identity)
# ----------------------------------------------------------------------
# The fused-round tier engages only on the perfect channel + synchronous
# scheduler with metrics off (docs/performance.md, eligibility matrix).
# Every other combination must silently run the historical step loop:
# passing ``round_kernel=`` there must not perturb a single byte.
_INELIGIBLE_STRESS = (
    {"channel": "lossy:0.05"},
    {"scheduler": "drift:0.1"},
    {"channel": "unreliable:0.05,0.01", "scheduler": "drift:0.1,3"},
)


@pytest.mark.parametrize("stress", _INELIGIBLE_STRESS)
@pytest.mark.parametrize("variant", ("max_degree", "two_channel"))
def test_round_kernel_silent_fallback_under_stress(variant, stress):
    graph = _graph(40)
    baseline = compute_mis(
        graph, variant=variant, seed=19, arbitrary_start=True, **stress
    )
    fused = compute_mis(
        graph, variant=variant, seed=19, arbitrary_start=True,
        round_kernel="fused_packed", **stress,
    )
    assert fused.rounds == baseline.rounds
    assert fused.mis == baseline.mis


@pytest.mark.parametrize("stress", _INELIGIBLE_STRESS)
def test_round_kernel_silent_fallback_constant_state(stress):
    graph = _graph(40)
    baseline = simulate_constant_state(
        graph, seed=19, arbitrary_start=True, **stress
    )
    fused = simulate_constant_state(
        graph, seed=19, arbitrary_start=True,
        round_kernel="fused_packed", **stress,
    )
    assert fused.rounds == baseline.rounds
    assert fused.mis == baseline.mis
    np.testing.assert_array_equal(fused.final_levels, baseline.final_levels)


@pytest.mark.parametrize("stress", _INELIGIBLE_STRESS)
def test_round_kernel_silent_fallback_batched(stress):
    graph = _graph(40)
    policy = policy_for_variant(graph, "max_degree")
    runs = {}
    for key, extra in (
        ("baseline", {}),
        ("fused", {"round_kernel": "fused_packed"}),
    ):
        engine = BatchedEngine(
            graph, policy, replicas=3, seed=19, **stress, **extra
        )
        engine.randomize_levels()
        runs[key] = engine.run(max_rounds=50_000)
    assert [r.rounds for r in runs["fused"]] == [
        r.rounds for r in runs["baseline"]
    ]
    for fused, baseline in zip(runs["fused"], runs["baseline"]):
        np.testing.assert_array_equal(fused.final_levels, baseline.final_levels)


def test_round_kernel_silent_fallback_with_collector():
    # Metrics attached (a collector) is the third ineligibility axis —
    # even on the perfect defaults the step loop must run so every
    # per-round record is emitted, unperturbed.
    graph = _graph(40)
    policy = policy_for_variant(graph, "max_degree")
    results, collectors = {}, {}
    for key, extra in (
        ("baseline", {}),
        ("fused", {"round_kernel": "fused_packed"}),
    ):
        engine = SingleChannelEngine(graph, policy, seed=6, **extra)
        engine.randomize_levels()
        collector = RunCollector(StructureView.from_engine(engine))
        results[key] = engine.until_stable(
            max_rounds=50_000, collector=collector
        )
        collectors[key] = collector
    assert results["fused"].rounds == results["baseline"].rounds
    np.testing.assert_array_equal(
        results["fused"].final_levels, results["baseline"].final_levels
    )
    assert len(collectors["fused"].records) == len(collectors["baseline"].records)
    assert len(collectors["fused"].records) == results["fused"].rounds


def test_round_kernel_silent_fallback_with_record_series():
    # record_series needs the per-round loop; the fused tier must bow out.
    graph = _graph(40)
    policy = policy_for_variant(graph, "max_degree")
    results = {}
    for key, extra in (
        ("baseline", {}),
        ("fused", {"round_kernel": "fused_packed"}),
    ):
        engine = SingleChannelEngine(graph, policy, seed=6, **extra)
        engine.randomize_levels()
        results[key] = engine.until_stable(max_rounds=50_000, record_series=True)
    assert results["fused"].rounds == results["baseline"].rounds
    assert results["fused"].beep_series == results["baseline"].beep_series
    assert results["fused"].stable_series == results["baseline"].stable_series


def test_perfect_channel_records_keep_historical_shape():
    graph = _graph(32)
    policy = policy_for_variant(graph, "max_degree")
    engine = SingleChannelEngine(graph, policy, seed=2)
    engine.randomize_levels()
    collector = RunCollector(StructureView.from_engine(engine))
    engine.until_stable(max_rounds=50_000, collector=collector)
    assert collector.records
    assert all(
        "dropped" not in r and "spurious" not in r for r in collector.records
    )
