"""Smoke tests: every example script runs to completion at small scale.

Examples are user-facing documentation; a broken one is a bug.  Each is
executed as a subprocess with a reduced problem size to keep the suite
fast.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["80"], ["stabilized after", "|MIS|"]),
    (
        "wireless_sensor_clustering.py",
        ["120"],
        ["cluster heads elected", "re-stabilized"],
    ),
    ("fault_recovery.py", ["80"], ["recovery rounds", "certified MIS"]),
    ("tdma_slot_assignment.py", ["60"], ["TDMA schedule", "link schedule"]),
    ("engine_comparison.py", [], ["IDENTICAL", "Engine throughput"]),
    ("fly_neural_selection.py", ["6", "12"], ["SOP pattern", "re-selected"]),
]


@pytest.mark.parametrize("script,args,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, expected):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    for needle in expected:
        assert needle in completed.stdout, (script, needle)


def test_two_channel_pipeline_importable():
    """two_channel_pipeline sweeps several sizes (slower); only check it
    imports and its helper works at tiny scale."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import importlib

        module = importlib.import_module("two_channel_pipeline")
        from repro.core import own_degree_policy, simulate_single
        from repro.graphs import generators

        graph = generators.barabasi_albert(32, 3, seed=1)
        summary = module.measure(
            graph, simulate_single, own_degree_policy(graph, c1=4), [1, 2]
        )
        assert summary.count == 2
    finally:
        sys.path.pop(0)
