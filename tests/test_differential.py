"""Differential tests: independent implementations must agree.

Several quantities have two or three independent implementations in the
codebase (chosen for clarity vs speed).  These tests fuzz random
configurations and require exact agreement:

* legality: ``legal_single`` (single pass) vs ``stable_sets_single``
  (set construction) vs the vectorized masks,
* (I, S): ``Configuration.stable_sets`` vs engine masks,
* μ positivity: the instrumentation's per-vertex μ vs the vectorized
  Lemma-3.1 mask used in ``repro.core.lemmas``.

Plus golden-trajectory regression pins: exact level vectors for fixed
seeds, so any accidental change to the round semantics fails loudly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instrumentation import Configuration
from repro.core.knowledge import explicit_policy, max_degree_policy
from repro.core.stability import legal_single, legal_two_channel, stable_sets_single
from repro.core.vectorized import SingleChannelEngine, TwoChannelEngine
from repro.graphs import generators as gen
from repro.graphs.graph import Graph


@st.composite
def configured_graph(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible))) if possible else []
    graph = Graph(n, edges)
    ell = draw(
        st.lists(st.integers(min_value=2, max_value=6), min_size=n, max_size=n)
    )
    levels = [
        draw(st.integers(min_value=-ell[v], max_value=ell[v])) for v in range(n)
    ]
    return graph, tuple(ell), tuple(levels)


class TestLegalityImplementationsAgree:
    @settings(max_examples=150, deadline=None)
    @given(data=configured_graph())
    def test_single_channel_three_ways(self, data):
        graph, ell, levels = data
        # 1. single-pass predicate.
        a = legal_single(graph, levels, ell)
        # 2. set construction.
        b = stable_sets_single(graph, levels, ell).is_legal(graph.num_vertices)
        # The set-based check is necessary but not sufficient for the
        # predicate (a non-I vertex could be dominated while not at
        # ℓmax)... verify they actually coincide by full definition:
        assert a == (b and all(
            levels[v] == ell[v]
            or v in stable_sets_single(graph, levels, ell).mis
            for v in graph.vertices()
        ))
        # 3. vectorized mask path.
        policy = explicit_policy(ell)
        engine = SingleChannelEngine(graph, policy, seed=0)
        engine.set_levels(np.array(levels))
        assert engine.is_legal() == a

    @settings(max_examples=100, deadline=None)
    @given(data=configured_graph())
    def test_stable_sets_vs_engine_masks(self, data):
        graph, ell, levels = data
        sets = stable_sets_single(graph, levels, ell)
        policy = explicit_policy(ell)
        engine = SingleChannelEngine(graph, policy, seed=0)
        engine.set_levels(np.array(levels))
        assert frozenset(np.nonzero(engine.mis_mask())[0].tolist()) == sets.mis
        assert frozenset(np.nonzero(engine.stable_mask())[0].tolist()) == sets.stable

    @settings(max_examples=100, deadline=None)
    @given(data=configured_graph())
    def test_mu_positivity_vs_vectorized(self, data):
        graph, ell, levels = data
        config = Configuration(graph, levels, ell)
        policy = explicit_policy(ell)
        engine = SingleChannelEngine(graph, policy, seed=0)
        engine.set_levels(np.array(levels))
        nonpositive = (engine.levels <= 0).astype(np.int8)
        mu_positive_fast = engine.adjacency.dot(nonpositive) == 0
        for v in graph.vertices():
            assert (config.mu(v) > 0) == bool(mu_positive_fast[v])

    @settings(max_examples=100, deadline=None)
    @given(data=configured_graph())
    def test_two_channel_predicate_vs_engine(self, data):
        graph, ell, levels = data
        nonneg = tuple(abs(l) % (e + 1) for l, e in zip(levels, ell))
        a = legal_two_channel(graph, nonneg, ell)
        policy = explicit_policy(ell)
        engine = TwoChannelEngine(graph, policy, seed=0)
        engine.set_levels(np.array(nonneg))
        assert engine.is_legal() == a


class TestGoldenTrajectories:
    """Pinned exact trajectories: semantic-change tripwires.

    The expected vectors were produced by the current implementation;
    the test's value is detecting *unintended* future changes to the
    update rules, the reception semantics, or the RNG discipline.
    """

    def test_single_channel_pin(self):
        graph = gen.cycle(8)
        policy = max_degree_policy(graph, c1=4)  # ℓmax = 5
        engine = SingleChannelEngine(graph, policy, seed=12345)
        for _ in range(10):
            engine.step()
        assert list(engine.levels) == [5, 5, -5, 5, 5, -5, 5, -5]

    def test_single_channel_pin_arbitrary_start(self):
        graph = gen.path(6)
        policy = max_degree_policy(graph, c1=4)
        engine = SingleChannelEngine(graph, policy, seed=999)
        engine.randomize_levels()
        start = list(engine.levels)
        for _ in range(5):
            engine.step()
        # Start vector and 5-round evolution, both pinned.
        assert start == [3, 3, -4, -4, -4, 2]
        assert list(engine.levels) == [-5, 5, 1, 1, 1, 5]

    def test_two_channel_pin(self):
        graph = gen.cycle(8)
        from repro.core.knowledge import neighborhood_degree_policy

        policy = neighborhood_degree_policy(graph, c1=4)  # ℓmax = 6
        engine = TwoChannelEngine(graph, policy, seed=777)
        for _ in range(10):
            engine.step()
        assert list(engine.levels) == [6, 0, 6, 0, 6, 0, 6, 0]

    def test_stabilization_round_pin(self):
        graph = gen.erdos_renyi_mean_degree(64, 6.0, seed=5)
        from repro.core.vectorized import simulate_single

        policy = max_degree_policy(graph, c1=4)
        result = simulate_single(graph, policy, seed=2024, arbitrary_start=True)
        assert result.stabilized
        assert result.rounds == 19
        assert len(result.mis) == 19
