"""The determinism & contract linter: every rule, both directions.

For each rule: a snippet it MUST flag and a clean snippet it MUST pass.
Plus: pragma suppression, the real ``src/`` tree staying clean, and the
``repro check`` exit-code contract (0 on the repo, non-zero with rule
IDs and file:line locations on a seeded-violation fixture).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import LintReport, lint_paths, lint_source, rule_catalogue
from repro.devtools.rules import rules_by_id

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def rules(rule_id):
    return [rules_by_id()[rule_id]]


def flagged(source, rule_id, module="repro.core.engines.fake"):
    return [
        v
        for v in lint_source(source, path="snippet.py", module=module,
                             rules=rules(rule_id))
        if v.rule == rule_id
    ]


# ----------------------------------------------------------------------
# RPR1xx — RNG discipline
# ----------------------------------------------------------------------
def test_rpr101_flags_legacy_global_rng():
    bad = "import numpy as np\nx = np.random.shuffle(items)\n"
    assert flagged(bad, "RPR101")


def test_rpr101_passes_generator_era_api():
    good = (
        "import numpy as np\n"
        "rng = np.random.default_rng(7)\n"
        "ss = np.random.SeedSequence(3)\n"
        "g = np.random.Generator(np.random.PCG64(1))\n"
    )
    assert not flagged(good, "RPR101")


def test_rpr102_flags_unseeded_default_rng():
    for bad in (
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nrng = np.random.default_rng(None)\n",
        "from numpy.random import default_rng\nrng = default_rng(seed=None)\n",
    ):
        assert flagged(bad, "RPR102"), bad


def test_rpr102_passes_seeded_and_forwarded_calls():
    good = (
        "import numpy as np\n"
        "rng1 = np.random.default_rng(0)\n"
        "def f(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert not flagged(good, "RPR102")


def test_rpr103_flags_stdlib_random():
    assert flagged("import random\n", "RPR103")
    assert flagged("from random import shuffle\n", "RPR103")


def test_rpr103_passes_numpy_random():
    assert not flagged("import numpy.random\nfrom numpy import random\n", "RPR103")


def test_rpr104_flags_seedless_simulate_api():
    bad = "def simulate_everything(graph, policy):\n    return None\n"
    assert flagged(bad, "RPR104")


def test_rpr104_passes_seed_accepting_apis():
    good = (
        "def simulate_single(graph, policy, seed=None):\n    return None\n"
        "def simulate_batched(graph, policy, seed_sequences=None):\n"
        "    return None\n"
        "def helper(x):\n    return x\n"
    )
    assert not flagged(good, "RPR104")


def test_rpr105_flags_rng_construction_in_stress_models():
    for bad in (
        "from repro.devtools.seeding import resolve_rng\n"
        "rng = resolve_rng(0)\n",
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        "from repro.devtools.seeding import derive_seed_sequence\n"
        "root = derive_seed_sequence(rng)\n",
        "children = seq.spawn(2)\n",
    ):
        for module in ("repro.beeping.channels", "repro.beeping.schedulers"):
            assert flagged(bad, "RPR105", module=module), (module, bad)


def test_rpr105_ignores_other_modules_and_stream_consumption():
    # The same constructions are fine anywhere else (the engines *own*
    # the seed tree)...
    bad = "from repro.devtools.seeding import resolve_rng\nrng = resolve_rng(0)\n"
    assert not flagged(bad, "RPR105", module="repro.core.engines.base")
    # ...and consuming a passed-in stream inside the models is the
    # sanctioned pattern.
    good = "def _perturb(self, heard, rng):\n    return rng.random(heard.shape)\n"
    assert not flagged(good, "RPR105", module="repro.beeping.channels")


def test_rpr105_real_stress_modules_are_clean():
    for name in ("channels", "schedulers"):
        path = SRC / "repro" / "beeping" / f"{name}.py"
        source = path.read_text(encoding="utf-8")
        assert not flagged(source, "RPR105", module=f"repro.beeping.{name}")


# ----------------------------------------------------------------------
# RPR2xx — determinism
# ----------------------------------------------------------------------
def test_rpr201_flags_wall_clock_and_entropy():
    for bad in (
        "import time\nt = time.time()\n",
        "import os\nb = os.urandom(8)\n",
        "import datetime\nd = datetime.datetime.now()\n",
        "import uuid\nu = uuid.uuid4()\n",
    ):
        assert flagged(bad, "RPR201"), bad


def test_rpr201_passes_deterministic_code():
    good = "import time\nname = time.strftime\n"  # referenced, not called
    assert not flagged(good, "RPR201")


def test_rpr202_flags_set_iteration():
    for bad in (
        "for x in {3, 1, 2}:\n    pass\n",
        "for x in set(items):\n    pass\n",
        "ys = [f(x) for x in {a, b}]\n",
    ):
        assert flagged(bad, "RPR202"), bad


def test_rpr202_passes_sorted_iteration():
    good = (
        "for x in sorted({3, 1, 2}):\n    pass\n"
        "for x in sorted(set(items)):\n    pass\n"
        "for x in [1, 2, 3]:\n    pass\n"
    )
    assert not flagged(good, "RPR202")


# ----------------------------------------------------------------------
# RPR3xx — numeric safety
# ----------------------------------------------------------------------
def test_rpr301_flags_float_equality():
    assert flagged("ok = p == 0.5\n", "RPR301")
    assert flagged("ok = 0.25 != q\n", "RPR301")


def test_rpr301_passes_sentinels_and_tolerant_compares():
    good = (
        "a = p == 0.0\n"
        "b = p == 1.0\n"
        "c = abs(p - 0.5) < 1e-9\n"
        "d = x == 3\n"
    )
    assert not flagged(good, "RPR301")


def test_rpr302_flags_small_int_dtypes():
    for bad in (
        "import numpy as np\nx = beeps.astype(np.int8)\n",
        "import numpy as np\nx = np.zeros(5, dtype=np.int16)\n",
        'x = a.astype("int8")\n',
        'import numpy as np\nx = np.array(data, dtype="uint8")\n',
    ):
        assert flagged(bad, "RPR302"), bad


def test_rpr302_passes_wide_dtypes():
    good = (
        "import numpy as np\n"
        "x = beeps.astype(np.int32)\n"
        "y = np.zeros(5, dtype=np.int64)\n"
        'z = a.astype("float64")\n'
    )
    assert not flagged(good, "RPR302")


def test_rpr302_exempts_view_into_wide_accumulator():
    # Reinterpreting a bool mask as int8 cannot wrap when the reduction
    # pins a wide accumulator dtype (the _row_counts idiom).
    good = (
        "import numpy as np\n"
        'x = np.einsum("ij->i", mask.view(np.int8), dtype=np.int32)\n'
    )
    assert not flagged(good, "RPR302")
    # ... but the same view without a wide accumulator still flags.
    for bad in (
        "import numpy as np\nx = mask.view(np.int8).sum(axis=1)\n",
        "import numpy as np\n"
        'x = np.einsum("ij->i", mask.view(np.int8), dtype=np.int16)\n',
    ):
        assert flagged(bad, "RPR302"), bad


# ----------------------------------------------------------------------
# RPR4xx — engine contract
# ----------------------------------------------------------------------
def test_rpr401_flags_stepless_engine_subclass():
    bad = (
        "class ShinyEngine(EngineBase):\n"
        "    def reset(self):\n        pass\n"
    )
    assert flagged(bad, "RPR401")


def test_rpr401_flags_seedless_init():
    bad = (
        "class ShinyEngine(EngineBase):\n"
        "    def __init__(self, graph):\n        pass\n"
        "    def step(self):\n        pass\n"
    )
    assert flagged(bad, "RPR401")


def test_rpr401_passes_conforming_subclass():
    good = (
        "class GoodEngine(EngineBase):\n"
        "    def __init__(self, graph, policy, seed=None):\n        pass\n"
        "    def step(self):\n        pass\n"
        "class KwargsEngine(EngineBase):\n"
        "    def __init__(self, graph, **kwargs):\n        pass\n"
        "    def step(self):\n        pass\n"
        "class Unrelated:\n"
        "    pass\n"
    )
    assert not flagged(good, "RPR401")


def test_rpr402_flags_graph_mutation():
    for bad in (
        "graph.num_vertices = 5\n",
        "self.graph.edges = ()\n",
        "graph.weights += 1\n",
        "del graph.cache\n",
    ):
        assert flagged(bad, "RPR402"), bad


def test_rpr402_passes_reads_and_local_state():
    good = (
        "n = graph.num_vertices\n"
        "self.levels = levels\n"
        "graphs = [g for g in graphs]\n"
    )
    assert not flagged(good, "RPR402")


def test_rpr403_flags_direct_round_kernel_construction():
    for bad in (
        "kern = FusedPackedRoundKernel(structure, algorithm='single')\n",
        "kern = FusedNumpyRoundKernel(structure)\n",
        "kern = FusedNumbaRoundKernel(structure)\n",
        "kern = RoundKernel(structure)\n",
        "self._rk = round.FusedPackedRoundKernel(structure)\n",
    ):
        assert flagged(bad, "RPR403"), bad


def test_rpr403_passes_registry_construction_and_home_package():
    good = (
        "kern = get_round_kernel('auto', structure, algorithm='single')\n"
        "name = resolve_round_kernel_name('packed')\n"
        "cls = FusedPackedRoundKernel\n"  # a reference, not a call
        "ok = isinstance(kern, RoundKernel)\n"
    )
    assert not flagged(good, "RPR403")
    # The registry's own module constructs the classes by design.
    bad = "kern = FusedPackedRoundKernel(structure)\n"
    assert not flagged(bad, "RPR403", module="repro.core.kernels.round")


# ----------------------------------------------------------------------
# RPR5xx — profiling discipline
# ----------------------------------------------------------------------
def test_rpr501_flags_ad_hoc_timers():
    for bad in (
        "import time\nt0 = time.perf_counter()\n",
        "import time\nt0 = time.process_time()\n",
        "import time\nt0 = time.monotonic_ns()\n",
    ):
        assert flagged(bad, "RPR501"), bad


def test_rpr501_passes_profiler_usage_and_references():
    good = (
        "from repro.obs import PhaseProfiler\n"
        "profiler = PhaseProfiler()\n"
        "with profiler.phase('sweep'):\n"
        "    run()\n"
        "clock = time.perf_counter  # referenced, not called\n"
    )
    assert not flagged(good, "RPR501")


def test_rpr501_exempts_the_profiling_module():
    timer_call = "import time\nt0 = time.perf_counter()\n"
    assert not flagged(timer_call, "RPR501", module="repro.obs.profiling")
    # RPR201 shares the exemption for the timer subset...
    assert not flagged(timer_call, "RPR201", module="repro.obs.profiling")
    # ...but non-timer entropy stays forbidden even there.
    entropy = "import os\nb = os.urandom(8)\n"
    assert flagged(entropy, "RPR201", module="repro.obs.profiling")


# ----------------------------------------------------------------------
# Driver behavior
# ----------------------------------------------------------------------
def test_pragma_suppression():
    bad = "import numpy as np\nx = np.random.shuffle(i)  # repro: allow[RPR101]\n"
    assert not flagged(bad, "RPR101")
    wildcard = "import random  # repro: allow[*]\n"
    assert not flagged(wildcard, "RPR103")
    wrong_rule = "import random  # repro: allow[RPR999]\n"
    assert flagged(wrong_rule, "RPR103")


def test_file_pragma_suppresses_anywhere_in_the_file():
    bad = (
        "# repro: allow-file[RPR101]\n"
        "import numpy as np\n"
        "x = np.random.shuffle(items)\n"
        "y = np.random.shuffle(others)\n"
    )
    assert not flagged(bad, "RPR101")
    # The pragma works from any line, not just the header.
    trailer = (
        "import numpy as np\n"
        "x = np.random.shuffle(items)\n"
        "# repro: allow-file[RPR101]\n"
    )
    assert not flagged(trailer, "RPR101")


def test_file_pragma_round_trips_every_catalogued_rule():
    """``allow-file[ID]`` must parse and suppress for each rule in the
    catalogue (and only that rule)."""
    bad = "import numpy as np\nx = np.random.shuffle(items)\n"
    for rule_id, _, _ in rule_catalogue():
        pragma = f"# repro: allow-file[{rule_id}]\n"
        suppressed = not flagged(pragma + bad, "RPR101")
        assert suppressed == (rule_id == "RPR101"), rule_id


def test_file_pragma_wildcard_and_wrong_rule():
    bad = "# repro: allow-file[RPR999]\nimport random\n"
    assert flagged(bad, "RPR103")
    wildcard = "# repro: allow-file[*]\nimport random\n"
    assert not flagged(wildcard, "RPR103")


def test_lint_paths_reports_and_sorts(tmp_path):
    (tmp_path / "a.py").write_text(
        "import random\nimport numpy as np\nr = np.random.default_rng()\n"
    )
    (tmp_path / "b.py").write_text("x = 1\n")
    report = lint_paths([str(tmp_path)])
    assert isinstance(report, LintReport)
    assert report.checked_files == 2
    assert not report.ok
    ids = [v.rule for v in report.violations]
    assert "RPR102" in ids and "RPR103" in ids
    # Human format carries file:line locations.
    assert "a.py:1" in report.format()


def test_parse_errors_are_reported_not_raised(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    report = lint_paths([str(tmp_path)])
    assert report.parse_errors and not report.ok


def test_docs_cover_every_lint_rule():
    # Older entries phrase their headings with markdown backticks, so
    # only the stable rule IDs are matched verbatim; the RPR105 entry
    # (added with this check) also pins its title text.
    docs = (REPO_ROOT / "docs" / "linting.md").read_text(encoding="utf-8")
    for rule_id, title, _ in rule_catalogue():
        assert f"### {rule_id} — " in docs, f"{rule_id} missing from docs/linting.md"
    assert "stress model builds its own RNG" in docs


def test_rule_catalogue_is_complete():
    rows = rule_catalogue()
    ids = [rule_id for rule_id, _, _ in rows]
    assert ids == sorted(ids)
    assert set(ids) == {
        "RPR101", "RPR102", "RPR103", "RPR104", "RPR105",
        "RPR201", "RPR202", "RPR301", "RPR302",
        "RPR401", "RPR402", "RPR403", "RPR501",
    }
    for rule_id, title, rationale in rows:
        assert title and rationale, rule_id


# ----------------------------------------------------------------------
# The real tree and the CLI gate
# ----------------------------------------------------------------------
def test_real_source_tree_is_lint_clean():
    report = lint_paths([str(SRC)], root=REPO_ROOT)
    assert report.ok, "\n" + report.format()


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=str(cwd),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


def test_repro_check_exits_zero_on_repo():
    proc = _run_cli(["check", "--format", "json", "--no-contract", "src"],
                    cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    names = {tool["name"] for tool in payload["tools"]}
    assert "repro-lint" in names


def test_repro_check_exits_nonzero_on_seeded_violation(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text(
        "import numpy as np\n"
        "def simulate_bad(graph):\n"
        "    return np.random.default_rng()\n"
    )
    proc = _run_cli(
        ["check", "--format", "json", "--no-contract", str(tmp_path)],
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    lint_tool = next(t for t in payload["tools"] if t["name"] == "repro-lint")
    rule_ids = {v["rule"] for v in lint_tool["violations"]}
    assert {"RPR102", "RPR104"} <= rule_ids
    # Every violation carries a file and a line.
    for violation in lint_tool["violations"]:
        assert violation["path"].endswith("seeded.py")
        assert violation["line"] >= 1


def test_repro_check_full_gate_is_green():
    """The acceptance criterion: `python -m repro check` exits 0 on the
    repository, including the runtime engine-contract sweep."""
    proc = _run_cli(["check"], cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_lint_module_cli_formats(tmp_path, fmt):
    (tmp_path / "ok.py").write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--format", fmt,
         str(tmp_path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    if fmt == "json":
        assert json.loads(proc.stdout)["ok"] is True
