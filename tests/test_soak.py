"""Soak tests: long executions under repeated, overlapping faults.

The paper's guarantee is per-fault ("after a transient fault, T
fault-free rounds suffice"); these tests drive the system through long
fault *campaigns* — dozens of corruption events of mixed kinds — and
assert that every fault-free window ends in a legal configuration and
every recovered MIS is valid.  This is the closest the suite gets to a
production burn-in.
"""

import numpy as np

from repro.beeping.faults import (
    AdversarialPattern,
    BernoulliCorruption,
    RandomCorruption,
    TargetedCorruption,
)
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.algorithm_two_channel import TwoChannelMIS
from repro.core.knowledge import max_degree_policy, neighborhood_degree_policy
from repro.core.vectorized import SingleChannelEngine
from repro.graphs import generators as gen
from repro.graphs.mis import check_mis


def fault_campaign(rng, n):
    """An endless stream of mixed fault events."""
    kinds = [
        lambda: RandomCorruption(),
        lambda: BernoulliCorruption(float(rng.uniform(0.05, 0.6))),
        lambda: AdversarialPattern.all_silent(),
        lambda: AdversarialPattern.all_prominent(),
        lambda: TargetedCorruption(
            vertices=tuple(
                int(v) for v in rng.choice(n, size=max(1, n // 10), replace=False)
            )
        ),
    ]
    while True:
        yield kinds[int(rng.integers(len(kinds)))]()


class TestSingleChannelSoak:
    def test_thirty_fault_campaign(self):
        graph = gen.erdos_renyi_mean_degree(100, 7.0, seed=11)
        policy = max_degree_policy(graph, c1=4)
        rng = np.random.default_rng(42)
        network = BeepingNetwork(
            graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=rng
        )
        faults = fault_campaign(rng, graph.num_vertices)
        recoveries = []
        for event in range(30):
            next(faults).apply(network, rng)
            result = run_until_stable(network, max_rounds=20_000)
            assert result.stabilized, f"event {event} did not recover"
            assert check_mis(graph, result.mis) is None
            recoveries.append(result.rounds)
        # Recovery time does not degrade over the campaign: the last
        # third is no slower than 3x the first third on average.
        first = np.mean(recoveries[:10])
        last = np.mean(recoveries[-10:])
        assert last <= 3 * max(first, 5.0)

    def test_faults_mid_convergence(self):
        """Corruption arriving *before* stabilization completes — the
        nastiest timing — must still lead to a legal configuration."""
        graph = gen.random_regular(80, 4, seed=12)
        policy = max_degree_policy(graph, c1=4)
        rng = np.random.default_rng(7)
        engine = SingleChannelEngine(graph, policy, seed=rng)
        engine.randomize_levels()
        # Interrupt convergence every 3 rounds, five times.
        for _ in range(5):
            for _ in range(3):
                engine.step()
            engine.randomize_levels()
        # Now leave it alone.
        budget = 20_000
        while not engine.is_legal():
            engine.step()
            budget -= 1
            assert budget > 0
        assert check_mis(graph, engine.mis_vertices()) is None


class TestTwoChannelSoak:
    def test_fifteen_fault_campaign(self):
        graph = gen.barabasi_albert(90, 3, seed=13)
        policy = neighborhood_degree_policy(graph, c1=4)
        algorithm = TwoChannelMIS()
        rng = np.random.default_rng(99)
        network = BeepingNetwork(
            graph, algorithm, policy.knowledge(graph), seed=rng
        )
        for event in range(15):
            if event % 3 == 0:
                network.set_states(
                    [
                        algorithm.random_state(k, rng)
                        for k in network.knowledge
                    ]
                )
            elif event % 3 == 1:
                BernoulliCorruption(0.4).apply(network, rng)
            else:
                # Everyone claims membership on channel 2.
                network.set_states([0] * graph.num_vertices)
            result = run_until_stable(network, max_rounds=20_000)
            assert result.stabilized, f"event {event} did not recover"
            assert check_mis(graph, result.mis) is None
