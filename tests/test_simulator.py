"""Tests for the high-level run loops (run_until_stable / run_fixed_rounds)."""

import pytest

from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_fixed_rounds, run_until_stable
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import max_degree_policy, uniform_policy
from repro.graphs.mis import check_mis


def make_network(graph, seed=0, c1=4, initial_states=None):
    policy = max_degree_policy(graph, c1=c1)
    return BeepingNetwork(
        graph,
        SelfStabilizingMIS(),
        policy.knowledge(graph),
        seed=seed,
        initial_states=initial_states,
    )


class TestRunUntilStable:
    def test_reports_first_legal_round(self, er_graph):
        network = make_network(er_graph, seed=1)
        result = run_until_stable(network, max_rounds=10_000)
        assert result.stabilized
        assert result.rounds == network.round_index
        assert check_mis(er_graph, result.mis) is None

    def test_zero_rounds_when_start_legal(self, path4):
        policy = uniform_policy(path4, 3)
        network = BeepingNetwork(
            path4,
            SelfStabilizingMIS(),
            policy.knowledge(path4),
            seed=0,
            initial_states=[-3, 3, -3, 3],
        )
        result = run_until_stable(network, max_rounds=10)
        assert result.stabilized and result.rounds == 0
        assert result.mis == {0, 2}

    def test_budget_exhaustion(self, er_graph):
        network = make_network(er_graph, seed=2)
        result = run_until_stable(network, max_rounds=1)
        assert not result.stabilized
        assert result.rounds == 1
        assert result.mis == frozenset()
        assert not result  # __bool__ is stabilized

    def test_negative_budget_rejected(self, path4):
        with pytest.raises(ValueError):
            run_until_stable(make_network(path4), max_rounds=-1)

    def test_invalid_check_every(self, path4):
        with pytest.raises(ValueError):
            run_until_stable(make_network(path4), max_rounds=5, check_every=0)

    def test_check_every_bounded_overreport(self, er_graph):
        exact = run_until_stable(make_network(er_graph, seed=3), max_rounds=10_000)
        sparse = run_until_stable(
            make_network(er_graph, seed=3), max_rounds=10_000, check_every=5
        )
        assert sparse.stabilized
        assert exact.rounds <= sparse.rounds < exact.rounds + 5
        assert sparse.mis == exact.mis

    def test_trace_recorded(self, er_graph):
        network = make_network(er_graph, seed=4)
        result = run_until_stable(network, max_rounds=10_000, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.rounds
        assert result.trace.first_legal_round() is None  # legal only after last recorded round
        # Beep counts are sane: between 0 and n per round.
        for metrics in result.trace.rounds:
            assert 0 <= metrics.beeps_per_channel[0] <= er_graph.num_vertices

    def test_final_states_snapshot(self, path4):
        network = make_network(path4, seed=5)
        result = run_until_stable(network, max_rounds=1000)
        assert result.final_states == network.states


class TestRunFixedRounds:
    def test_runs_exactly_n_rounds(self, er_graph):
        network = make_network(er_graph, seed=6)
        result = run_fixed_rounds(network, rounds=25)
        assert network.round_index == 25
        assert result.rounds == 25
        assert result.trace is not None and len(result.trace) == 25

    def test_legality_persists_after_stabilization(self, er_graph):
        """Run far past stabilization: legality, once reached, holds."""
        network = make_network(er_graph, seed=7)
        first = run_until_stable(network, max_rounds=10_000)
        assert first.stabilized
        later = run_fixed_rounds(network, rounds=50)
        assert later.stabilized
        assert later.mis == first.mis
        # Every recorded round was legal.
        assert all(m.legal for m in later.trace.rounds)

    def test_without_trace(self, path4):
        network = make_network(path4, seed=8)
        result = run_fixed_rounds(network, rounds=5, record_trace=False)
        assert result.trace is None
