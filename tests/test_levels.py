"""Unit tests for the level mechanics (Figure 1 + update rules)."""

import pytest

from repro.core.levels import (
    beep_probability,
    clamp_level,
    is_prominent,
    probability_table,
    update_level,
    update_level_two_channel,
)


class TestActivationFunction:
    """The Figure-1 shape, checked pointwise."""

    def test_prominent_levels_beep_surely(self):
        for level in range(-5, 1):
            assert beep_probability(level, 5) == 1.0

    def test_competition_regime_halves(self):
        assert beep_probability(1, 5) == 0.5
        assert beep_probability(2, 5) == 0.25
        assert beep_probability(4, 5) == 0.0625

    def test_max_level_silent(self):
        assert beep_probability(5, 5) == 0.0

    def test_monotone_nonincreasing(self):
        ell_max = 8
        probabilities = [
            beep_probability(l, ell_max) for l in range(-ell_max, ell_max + 1)
        ]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            beep_probability(6, 5)
        with pytest.raises(ValueError):
            beep_probability(-6, 5)

    def test_invalid_ell_max(self):
        with pytest.raises(ValueError):
            beep_probability(0, 0)

    def test_table_covers_full_range(self):
        table = probability_table(3)
        assert [lvl for lvl, _ in table] == [-3, -2, -1, 0, 1, 2, 3]
        assert table[0][1] == 1.0 and table[-1][1] == 0.0
        assert dict(table)[2] == 0.25

    def test_ell_max_one_is_degenerate_binary(self):
        # ℓmax = 1: only levels -1, 0 (beep surely) and 1 (silent).
        assert probability_table(1) == [(-1, 1.0), (0, 1.0), (1, 0.0)]


class TestProminence:
    def test_boundary(self):
        assert is_prominent(0)
        assert is_prominent(-3)
        assert not is_prominent(1)


class TestClamp:
    def test_identity_in_range(self):
        assert clamp_level(3, 5) == 3
        assert clamp_level(-5, 5) == -5

    def test_clamps_extremes(self):
        assert clamp_level(99, 5) == 5
        assert clamp_level(-99, 5) == -5


class TestSingleChannelUpdate:
    """Algorithm 1's update rule, all branches."""

    def test_heard_increments(self):
        assert update_level(2, beeped=False, heard=True, ell_max=5) == 3
        assert update_level(2, beeped=True, heard=True, ell_max=5) == 3

    def test_heard_caps_at_ell_max(self):
        assert update_level(5, beeped=False, heard=True, ell_max=5) == 5

    def test_solo_beep_resets_to_minus_ell_max(self):
        assert update_level(1, beeped=True, heard=False, ell_max=5) == -5
        assert update_level(-5, beeped=True, heard=False, ell_max=5) == -5

    def test_silence_decrements_with_floor_one(self):
        assert update_level(4, beeped=False, heard=False, ell_max=5) == 3
        assert update_level(1, beeped=False, heard=False, ell_max=5) == 1
        # The asymmetric clamp: a non-beeping vertex can never go below 1.
        assert update_level(2, beeped=False, heard=False, ell_max=5) == 1
        assert update_level(0, beeped=False, heard=False, ell_max=5) == 1

    def test_negative_levels_only_via_solo_beep(self):
        """Exhaustively: from any non-negative level, the only transition
        into negative territory is (beeped, not heard)."""
        ell_max = 4
        for level in range(-ell_max, ell_max + 1):
            for beeped in (False, True):
                for heard in (False, True):
                    new = update_level(level, beeped, heard, ell_max)
                    if new < 0 and level >= 0:
                        assert beeped and not heard

    def test_range_preserved(self):
        ell_max = 6
        for level in range(-ell_max, ell_max + 1):
            for beeped in (False, True):
                for heard in (False, True):
                    new = update_level(level, beeped, heard, ell_max)
                    assert -ell_max <= new <= ell_max


class TestTwoChannelUpdate:
    """Algorithm 2's update rule, all branches."""

    def test_beep2_received_dominates(self):
        # Hearing an MIS announcement sends any level to ℓmax.
        for level in range(0, 6):
            assert (
                update_level_two_channel(
                    level, beeped1=False, heard1=True, heard2=True, ell_max=5
                )
                == 5
            )

    def test_beep1_received_increments(self):
        assert (
            update_level_two_channel(
                2, beeped1=False, heard1=True, heard2=False, ell_max=5
            )
            == 3
        )
        assert (
            update_level_two_channel(
                5, beeped1=False, heard1=True, heard2=False, ell_max=5
            )
            == 5
        )

    def test_solo_beep1_joins_mis(self):
        assert (
            update_level_two_channel(
                3, beeped1=True, heard1=False, heard2=False, ell_max=5
            )
            == 0
        )

    def test_silent_nonmember_decrements_with_floor(self):
        assert (
            update_level_two_channel(
                4, beeped1=False, heard1=False, heard2=False, ell_max=5
            )
            == 3
        )
        assert (
            update_level_two_channel(
                1, beeped1=False, heard1=False, heard2=False, ell_max=5
            )
            == 1
        )

    def test_mis_member_holding_position(self):
        # Level 0 sent beep2; hearing nothing keeps it at 0.
        assert (
            update_level_two_channel(
                0, beeped1=False, heard1=False, heard2=False, ell_max=5
            )
            == 0
        )

    def test_adjacent_mis_members_retreat(self):
        # A 0-vertex that hears another beep2 leaves the MIS (to ℓmax).
        assert (
            update_level_two_channel(
                0, beeped1=False, heard1=False, heard2=True, ell_max=5
            )
            == 5
        )

    def test_range_preserved(self):
        ell_max = 4
        for level in range(0, ell_max + 1):
            for beeped1 in (False, True):
                for heard1 in (False, True):
                    for heard2 in (False, True):
                        new = update_level_two_channel(
                            level, beeped1, heard1, heard2, ell_max
                        )
                        assert 0 <= new <= ell_max
