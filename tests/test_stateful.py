"""Stateful property testing: random interleavings of operations.

A hypothesis ``RuleBasedStateMachine`` drives a live network through an
arbitrary interleaving of rounds, corruptions of every kind, and
engine-state assertions.  The invariants checked after *every* rule:

* levels stay inside their per-vertex ranges,
* the vectorized and set-based legality implementations agree,
* once legal and untouched, the configuration never changes (checked
  opportunistically whenever a run of fault-free steps begins legal).

This explores operation orders the scenario tests never write down
(e.g. corrupt → one round → corrupt again → legality check).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.knowledge import explicit_policy
from repro.core.stability import legal_single
from repro.core.vectorized import SingleChannelEngine
from repro.graphs.generators import erdos_renyi
from repro.graphs.mis import check_mis


class EngineMachine(RuleBasedStateMachine):
    @initialize(
        n=st.integers(2, 14),
        p=st.floats(0.0, 0.6),
        graph_seed=st.integers(0, 2**16),
        engine_seed=st.integers(0, 2**16),
        ell=st.integers(2, 6),
    )
    def setup(self, n, p, graph_seed, engine_seed, ell):
        self.graph = erdos_renyi(n, p, seed=graph_seed)
        self.policy = explicit_policy([ell] * n)
        self.engine = SingleChannelEngine(self.graph, self.policy, seed=engine_seed)
        self.rng = np.random.default_rng(engine_seed + 1)
        self.was_legal = False

    # -- operations ------------------------------------------------------
    @rule(rounds=st.integers(1, 8))
    def advance(self, rounds):
        legal_before = self.engine.is_legal()
        levels_before = self.engine.levels.copy()
        for _ in range(rounds):
            self.engine.step()
        if legal_before:
            # Legality is absorbing and the configuration is a fixed point.
            assert self.engine.is_legal()
            assert (self.engine.levels == levels_before).all()

    @rule()
    def corrupt_everything(self):
        self.engine.randomize_levels()

    @rule(rho=st.floats(0.05, 0.9))
    def corrupt_some(self, rho):
        hits = self.rng.random(self.engine.n) < rho
        fresh = self.rng.integers(
            -self.engine.ell_max, self.engine.ell_max + 1
        )
        self.engine.levels = np.where(hits, fresh, self.engine.levels)

    @rule()
    def corrupt_to_extremes(self):
        sign = 1 if self.rng.integers(2) else -1
        self.engine.levels = sign * self.engine.ell_max.copy()

    @rule()
    def drive_to_stability(self):
        budget = 30_000
        while not self.engine.is_legal():
            self.engine.step()
            budget -= 1
            assert budget > 0, "failed to stabilize within 30k rounds"
        assert check_mis(self.graph, self.engine.mis_vertices()) is None

    # -- invariants -------------------------------------------------------
    @invariant()
    def levels_in_range(self):
        if not hasattr(self, "engine"):
            return
        assert (self.engine.levels >= -self.engine.ell_max).all()
        assert (self.engine.levels <= self.engine.ell_max).all()

    @invariant()
    def legality_implementations_agree(self):
        if not hasattr(self, "engine"):
            return
        fast = self.engine.is_legal()
        slow = legal_single(
            self.graph,
            [int(x) for x in self.engine.levels],
            list(self.policy.ell_max),
        )
        assert fast == slow


TestEngineStateMachine = EngineMachine.TestCase
TestEngineStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
