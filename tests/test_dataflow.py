"""The whole-program dataflow analyzer: every RPR6xx rule, both directions.

Covers: the fixture corpus (one flagging and one clean file per rule,
with the RPR611 case split across a module boundary), interprocedural
depth, pragma handling at both granularities, baseline round-trips,
SARIF output, the ``repro check`` integration, catalogue/docs sync, and
the wall-time budget on the real tree.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.dataflow import (
    DATAFLOW_RULES,
    analyze_paths,
    analyze_sources,
    dataflow_catalogue,
)
from repro.devtools.dataflow.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.devtools.dataflow.sarif import to_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "dataflow_fixtures"

ALL_RULE_IDS = (
    "RPR601", "RPR602", "RPR611", "RPR612", "RPR621", "RPR622", "RPR631",
    "RPR641",
)


@pytest.fixture(scope="module")
def corpus_report():
    return analyze_paths([str(FIXTURES)], root=REPO_ROOT)


def rules_in(report, path_fragment):
    return sorted(
        v.rule for v in report.violations if path_fragment in v.path
    )


# ----------------------------------------------------------------------
# The fixture corpus: each rule fires on its flag file, never on clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_catches_its_seeded_fixture(corpus_report, rule_id):
    stem = f"df{rule_id[3:]}_flag"
    assert rules_in(corpus_report, stem) == [rule_id]


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_passes_its_clean_fixture(corpus_report, rule_id):
    stem = f"df{rule_id[3:]}_clean"
    assert rules_in(corpus_report, stem) == []


def test_corpus_parses_cleanly(corpus_report):
    assert corpus_report.errors == []


def test_rpr611_crosses_the_module_boundary(corpus_report):
    """The reintroduced PR-1 bug: producer and matvec in different files."""
    [violation] = [
        v for v in corpus_report.violations if "df611_flag" in v.path
    ]
    # Flagged at the call site in run(), citing the helper it flows through.
    assert violation.symbol.endswith(".run")
    assert "neighbor_counts" in violation.message


def test_rpr601_flags_two_hops_from_the_raw_generator(corpus_report):
    [violation] = [
        v for v in corpus_report.violations if "df601_flag" in v.path
    ]
    assert violation.symbol.endswith(".top")


# ----------------------------------------------------------------------
# Interprocedural behavior on in-memory sources
# ----------------------------------------------------------------------
def test_rpr601_direct_raw_generator_into_entry_point():
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "def simulate(graph, seed=None):\n"
            "    return seed\n"
            "def run(graph):\n"
            "    rng = np.random.default_rng(0)\n"
            "    return simulate(graph, seed=rng)\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR601"]


def test_rpr601_blessed_generator_is_fine():
    report = analyze_sources({
        "m": (
            "from repro.devtools.seeding import resolve_rng\n"
            "def simulate(graph, seed=None):\n"
            "    return seed\n"
            "def run(graph, seed):\n"
            "    return simulate(graph, seed=resolve_rng(seed))\n"
        )
    })
    assert report.violations == []


def test_rpr602_loop_consumption_of_outer_seed():
    report = analyze_sources({
        "m": (
            "from repro.devtools.seeding import resolve_rng\n"
            "def run(seed, n):\n"
            "    out = []\n"
            "    for _ in range(n):\n"
            "        out.append(resolve_rng(seed))\n"
            "    return out\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR602"]
    assert "loop" in report.violations[0].message


def test_rpr602_not_fooled_by_terminated_branches():
    """A consume in a returning branch must not merge into the fall-through."""
    report = analyze_sources({
        "m": (
            "from repro.devtools.seeding import resolve_rng\n"
            "def run(seed, fast):\n"
            "    if fast:\n"
            "        return resolve_rng(seed)\n"
            "    return resolve_rng(seed)\n"
        )
    })
    assert report.violations == []


def test_rpr602_reassignment_resets_the_count():
    report = analyze_sources({
        "m": (
            "from repro.devtools.seeding import resolve_rng\n"
            "def run(seed):\n"
            "    a = resolve_rng(seed)\n"
            "    seed = 123\n"
            "    b = resolve_rng(seed)\n"
            "    return a, b\n"
        )
    })
    assert report.violations == []


def test_rpr611_dtype_survives_three_hops():
    report = analyze_sources({
        "a": (
            "import numpy as np\n"
            "def make(n):\n"
            "    return np.zeros(n, dtype=np.int8)\n"
        ),
        "b": (
            "from a import make\n"
            "def wrap(n):\n"
            "    return make(n)\n"
        ),
        "c": (
            "from b import wrap\n"
            "def count(adj, n):\n"
            "    return adj.dot(wrap(n))\n"
        ),
    })
    assert [(v.rule, v.path) for v in report.violations] == [("RPR611", "c.py")]


def test_rpr612_out_kwarg_counts_as_a_store():
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "def run(x, y):\n"
            "    buf = np.empty(4, dtype=np.int16)\n"
            "    np.add(x, y, out=buf)\n"
            "    return buf\n"
        )
    })
    assert "RPR612" in [v.rule for v in report.violations]


def test_rpr621_augmented_assignment_is_a_mutation():
    report = analyze_sources({
        "m": (
            "def bump(engine):\n"
            "    engine.ell_max += 1\n"
            "    return engine\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR621"]


def test_rpr622_nested_function_submitted_via_helper():
    report = analyze_sources({
        "m": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def dispatch(pool, task, item):\n"
            "    return pool.submit(task, item)\n"
            "def run(items):\n"
            "    def local(x):\n"
            "        return x + 1\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [dispatch(pool, local, i) for i in items]\n"
        )
    })
    assert "RPR622" in [v.rule for v in report.violations]


def test_rpr631_flags_sparse_constructor_outside_kernels():
    report = analyze_sources({
        "m": (
            "import scipy.sparse as sp\n"
            "def adjacency(rows, cols, data, n):\n"
            "    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR631"]


def test_rpr631_exempts_the_structure_home_modules():
    source = (
        "import scipy.sparse as sp\n"
        "from repro.graphs.io import to_sparse_adjacency\n"
        "def build(graph, n):\n"
        "    direct = to_sparse_adjacency(graph)\n"
        "    return direct, sp.csr_matrix((n, n))\n"
    )
    for module in ("repro.core.kernels.structure", "repro.graphs.io"):
        report = analyze_sources({module: source})
        assert report.violations == [], module
    # The same source anywhere else is flagged at both call sites.
    flagged = analyze_sources({"repro.analysis.helpers": source})
    assert [v.rule for v in flagged.violations] == ["RPR631", "RPR631"]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_a_dataflow_finding():
    report = analyze_sources({
        "m": (
            "from repro.devtools.seeding import resolve_rng\n"
            "def run(seed):\n"
            "    a = resolve_rng(seed)\n"
            "    b = resolve_rng(seed)  # repro: allow[RPR602]\n"
            "    return a, b\n"
        )
    })
    assert report.violations == []


def test_file_pragma_suppresses_the_whole_file():
    source = (
        "# repro: allow-file[RPR602]\n"
        "from repro.devtools.seeding import resolve_rng\n"
        "def run(seed):\n"
        "    return resolve_rng(seed), resolve_rng(seed)\n"
    )
    assert analyze_sources({"m": source}).violations == []
    # Without the pragma the same source is flagged.
    assert analyze_sources({"m": source.split("\n", 1)[1]}).violations


def test_file_pragma_is_rule_specific():
    report = analyze_sources({
        "m": (
            "# repro: allow-file[RPR611]\n"
            "from repro.devtools.seeding import resolve_rng\n"
            "def run(seed):\n"
            "    return resolve_rng(seed), resolve_rng(seed)\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR602"]


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
def test_baseline_round_trip_suppresses_known_findings(tmp_path, corpus_report):
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, corpus_report.violations)
    fingerprints = load_baseline(baseline_path)
    assert apply_baseline(corpus_report.violations, fingerprints) == []
    # A fresh finding in a different symbol survives the baseline.
    fresh = analyze_sources({
        "other": (
            "from repro.devtools.seeding import resolve_rng\n"
            "def newly_buggy(seed):\n"
            "    return resolve_rng(seed), resolve_rng(seed)\n"
        )
    }).violations
    assert apply_baseline(fresh, fingerprints) == fresh


def test_baseline_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"version": 2, "suppressions": []}')
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text("not json")
    with pytest.raises(BaselineError):
        load_baseline(bad)


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_structure(corpus_report):
    log = to_sarif([v.to_json() for v in corpus_report.violations])
    assert log["version"] == "2.1.0"
    [run] = log["runs"]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert set(ALL_RULE_IDS) <= rule_ids
    assert "RPR101" in rule_ids  # per-line catalogue is included too
    assert len(run["results"]) == len(corpus_report.violations)
    for result in run["results"]:
        assert result["ruleIndex"] >= 0
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


# ----------------------------------------------------------------------
# Catalogue / docs sync
# ----------------------------------------------------------------------
def test_dataflow_catalogue_is_complete():
    rows = dataflow_catalogue()
    ids = [rule_id for rule_id, _, _ in rows]
    assert ids == sorted(ids)
    assert tuple(ids) == ALL_RULE_IDS
    for rule_id, title, rationale in rows:
        assert title and rationale, rule_id
    assert len(DATAFLOW_RULES) == len(ALL_RULE_IDS)


def test_docs_cover_every_dataflow_rule():
    docs = (REPO_ROOT / "docs" / "linting.md").read_text(encoding="utf-8")
    for rule_id, title, _ in dataflow_catalogue():
        assert rule_id in docs, f"{rule_id} missing from docs/linting.md"
        assert title in docs, f"title of {rule_id} missing from docs/linting.md"
    assert "--sanitize" in docs
    assert "allow-file" in docs


# ----------------------------------------------------------------------
# The real tree and the repro check integration
# ----------------------------------------------------------------------
def test_real_source_tree_is_dataflow_clean():
    report = analyze_paths([str(SRC / "repro")], root=REPO_ROOT)
    assert report.errors == []
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )


def test_analyzer_wall_time_budget():
    import time

    start = time.perf_counter()
    analyze_paths([str(SRC / "repro")], root=REPO_ROOT)
    assert time.perf_counter() - start < 10.0


def test_check_json_payload_reports_dataflow_timing():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", "--no-external",
         "--no-contract", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    [dataflow] = [t for t in payload["tools"] if t["name"] == "repro-dataflow"]
    assert dataflow["status"] == "passed"
    assert dataflow["data"]["elapsed_s"] < 10.0
    assert dataflow["data"]["modules"] > 50


def test_check_baseline_and_sarif_flags(tmp_path):
    # Seed one finding, baseline it, and confirm the gate goes green.
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "buggy.py").write_text(
        "from repro.devtools.seeding import resolve_rng\n"
        "def run(seed):\n"
        "    return resolve_rng(seed), resolve_rng(seed)\n",
        encoding="utf-8",
    )
    sarif_path = tmp_path / "out.sarif"

    def check(*extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", "check", str(bad),
             "--no-external", "--no-contract", "--format", "json", *extra],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    proc = check("--sarif", str(sarif_path))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    [dataflow] = [t for t in payload["tools"] if t["name"] == "repro-dataflow"]
    [violation] = dataflow["violations"]
    assert violation["rule"] == "RPR602"
    sarif = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert [r["ruleId"] for r in sarif["runs"][0]["results"]] == ["RPR602"]

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps({
            "version": 1,
            "suppressions": [{
                "rule": violation["rule"],
                "path": violation["path"],
                "symbol": violation["symbol"],
            }],
        }),
        encoding="utf-8",
    )
    proc = check("--baseline", str(baseline_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    [dataflow] = [t for t in payload["tools"] if t["name"] == "repro-dataflow"]
    assert dataflow["violations"] == []
    assert dataflow["data"]["suppressed_by_baseline"] == 1
