"""The serving stack: op format, MutableTopology, MISService, determinism.

Covers the contracts ``docs/serving.md`` documents:

* strict op parsing (bad JSON / unknown ops / wrong fields fail loudly,
  semantic failures are *rejections*, not parse errors);
* degree-cap (ℓmax-validity) enforcement — a rejected op leaves both
  topology and engine untouched;
* deterministic replay — same seed + stream → byte-identical served
  outcomes (including the full MIS history);
* metrics-on/off byte-identity — observability never changes outcomes;
* the incremental-vs-rebuild latency claim at n = 512 (the acceptance
  number recorded in ``results/BENCH_serve.json``).
"""

import json

import numpy as np
import pytest

from repro.graphs import Graph, MutableTopology, TopologyError
from repro.graphs.generators import erdos_renyi
from repro.obs import InMemorySink, MetricsRegistry
from repro.serve import (
    MISService,
    Op,
    OpError,
    ServeReport,
    format_op,
    generate_ops,
    parse_op,
    parse_ops,
)


def _graph(n=48, p=0.12, seed=3):
    return erdos_renyi(n, p, seed=seed)


# ----------------------------------------------------------------------
# Op format
# ----------------------------------------------------------------------
def test_parse_all_op_kinds():
    lines = [
        '{"op": "ADD_NODE"}',
        '{"op": "DEL_NODE", "v": 3}',
        '{"op": "ADD_EDGE", "u": 1, "v": 2}',
        '{"op": "DEL_EDGE", "u": 2, "v": 1}',
        '{"op": "READ_NBRS", "v": 0}',
        '{"op": "QUERY_MIS"}',
    ]
    ops = [parse_op(line) for line in lines]
    assert [op.kind for op in ops] == [
        "ADD_NODE", "DEL_NODE", "ADD_EDGE", "DEL_EDGE", "READ_NBRS", "QUERY_MIS",
    ]
    assert ops[2].u == 1 and ops[2].v == 2
    assert [op.is_mutation for op in ops] == [True] * 4 + [False] * 2


def test_op_round_trip():
    graph = _graph()
    ops = generate_ops("burst", 120, 7, graph, degree_cap=graph.max_degree() + 2)
    lines = [format_op(op) for op in ops]
    assert list(parse_ops(lines)) == ops
    for line in lines:  # canonical JSON: parseable, one object per line
        assert isinstance(json.loads(line), dict)


def test_parse_ops_skips_blanks_and_comments():
    text = ["", "# a comment", '{"op": "QUERY_MIS"}', "   "]
    assert list(parse_ops(text)) == [Op("QUERY_MIS")]


@pytest.mark.parametrize("line", [
    "not json",
    '["op"]',
    '{"op": "NO_SUCH_OP"}',
    '{"op": "ADD_EDGE", "u": 1}',  # missing field
    '{"op": "ADD_EDGE", "u": 1, "v": 2, "w": 3}',  # extra field
    '{"op": "ADD_NODE", "v": 1}',  # field not in spec
    '{"op": "DEL_NODE", "v": -1}',  # negative id
    '{"op": "DEL_NODE", "v": true}',  # bool is not an int here
    '{"op": "READ_NBRS", "v": "3"}',  # string id
])
def test_parse_rejects_malformed(line):
    with pytest.raises(OpError):
        parse_op(line)


# ----------------------------------------------------------------------
# MutableTopology semantics
# ----------------------------------------------------------------------
def test_snapshot_matches_fresh_graph_after_every_op():
    graph = _graph()
    topo = MutableTopology(graph)
    rng = np.random.default_rng(0)
    edges = set(graph.edges)
    for _ in range(40):
        u, v = (int(x) for x in rng.integers(0, topo.num_vertices, 2))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if topo.has_edge(u, v):
            topo.remove_edge(u, v)
            edges.discard(edge)
        elif topo.is_live(u) and topo.is_live(v):
            topo.add_edge(u, v)
            edges.add(edge)
        snap = topo.snapshot()
        assert set(snap.edges) == edges
        assert snap.num_vertices == topo.num_vertices


def test_degree_cap_rejection_keeps_state():
    star = Graph(4, [(0, 1), (0, 2)])
    topo = MutableTopology(star, degree_cap=2)
    version = topo.version
    with pytest.raises(TopologyError, match="degree cap"):
        topo.add_edge(0, 3)  # would push 0 to degree 3
    assert topo.version == version
    assert not topo.has_edge(0, 3)
    assert topo.num_edges == 2
    # Cap also validates the starting graph.
    with pytest.raises(TopologyError, match="cap"):
        MutableTopology(star, degree_cap=1)


def test_tombstone_and_recycle():
    graph = _graph()
    topo = MutableTopology(graph)
    n = topo.num_vertices
    topo.remove_node(7)
    topo.remove_node(3)
    assert not topo.is_live(3) and topo.num_live == n - 2
    with pytest.raises(TopologyError):
        topo.remove_node(3)  # already dead
    with pytest.raises(TopologyError):
        topo.add_edge(3, 0)  # dead endpoint
    vid, delta = topo.add_node()
    assert vid == 3 and not delta.grows  # lowest freed id first
    vid, _ = topo.add_node()
    assert vid == 7
    vid, delta = topo.add_node()
    assert vid == n and delta.grows  # free list empty -> grow


# ----------------------------------------------------------------------
# MISService
# ----------------------------------------------------------------------
def test_service_rejects_without_perturbing_state():
    graph = _graph()
    cap = graph.max_degree()
    service = MISService(graph, degree_cap=cap, seed=0)
    mis_before = service.mis()
    hub = max(range(graph.num_vertices), key=graph.degree)
    other = next(
        v for v in range(graph.num_vertices)
        if v != hub and not graph.has_edge(hub, v)
    )
    result = service.apply(Op("ADD_EDGE", u=hub, v=other))
    assert result.status == "rejected" and "degree cap" in result.error
    dup = service.topology.edges()[0]
    assert service.apply(Op("ADD_EDGE", u=dup[0], v=dup[1])).status == "rejected"
    assert service.apply(Op("DEL_EDGE", u=hub, v=other)).status == "rejected"
    assert service.apply(Op("READ_NBRS", v=graph.num_vertices + 5)).status == "rejected"
    assert service.mis() == mis_before
    assert service.verify_legal()


def test_served_stream_stays_legal_and_reads_are_consistent():
    graph = _graph()
    cap = graph.max_degree() + 2
    ops = generate_ops("churn-heavy", 250, 1, graph, degree_cap=cap)
    service = MISService(graph, degree_cap=cap, seed=1)
    report = service.run(ops)
    assert isinstance(report, ServeReport)
    summary = report.summary()
    assert summary["rejected"] == 0
    assert service.verify_legal()
    # Reads reflect the topology at their point in the stream; MIS
    # answers only ever contain live vertices.
    for res in report.results:
        if res.op.kind == "QUERY_MIS":
            assert res.mis == tuple(sorted(res.mis))
        if res.op.kind == "READ_NBRS":
            assert res.neighbors == tuple(sorted(res.neighbors))
    # Mutations report restabilization rounds, reads never do.
    assert all(
        (res.rounds is not None) == res.op.is_mutation
        for res in report.results if res.status == "ok"
    )


@pytest.mark.parametrize("algorithm,engine", [
    ("single", "vectorized"),
    ("two_channel", "vectorized"),
    ("single", "batched"),
])
def test_deterministic_replay(algorithm, engine):
    graph = _graph()
    cap = graph.max_degree() + 2
    outcomes = []
    for _ in range(2):
        ops = generate_ops("churn-heavy", 120, 5, graph, degree_cap=cap)
        service = MISService(
            graph, degree_cap=cap, seed=5, algorithm=algorithm, engine=engine
        )
        outcomes.append(service.run(ops).outcomes())
    assert outcomes[0] == outcomes[1]


def test_workload_generation_is_deterministic_and_valid():
    graph = _graph()
    cap = graph.max_degree() + 2
    a = generate_ops("burst", 200, 9, graph, degree_cap=cap)
    b = generate_ops("burst", 200, 9, graph, degree_cap=cap)
    assert a == b
    assert generate_ops("burst", 200, 10, graph, degree_cap=cap) != a
    # Every generated op applies cleanly (0 rejections).
    report = MISService(graph, degree_cap=cap, seed=9).run(a)
    assert report.summary()["rejected"] == 0
    with pytest.raises(ValueError, match="unknown workload"):
        generate_ops("nope", 1, 0, graph)


def test_metrics_on_off_byte_identity():
    graph = _graph()
    cap = graph.max_degree() + 2
    ops = generate_ops("read-heavy", 150, 2, graph, degree_cap=cap)
    bare = MISService(graph, degree_cap=cap, seed=2).run(ops)
    registry = MetricsRegistry()
    sink = InMemorySink()
    observed = MISService(
        graph, degree_cap=cap, seed=2, registry=registry, sink=sink
    ).run(ops)
    assert bare.outcomes() == observed.outcomes()
    # ... and the observers actually saw the stream.
    assert len(sink.records) == len(ops)
    snapshot = registry.snapshot()
    total = sum(
        row["value"] for row in snapshot["counters"]
        if row["name"] == "serve_ops_total"
    )
    assert total == len(ops)


def test_growth_extends_policy_and_stays_legal():
    graph = _graph(n=20)
    cap = graph.max_degree() + 2
    service = MISService(graph, degree_cap=cap, seed=0)
    for _ in range(4):  # no tombstones -> every add grows the id space
        result = service.apply(Op("ADD_NODE"))
        assert result.status == "ok"
    assert service.topology.num_vertices == 24
    new_id = 20
    assert service.apply(Op("ADD_EDGE", u=new_id, v=0)).status == "ok"
    assert service.verify_legal()
    # The new vertex is covered: in the MIS or dominated by a neighbor.
    mis = set(service.mis())
    assert new_id in mis or mis & set(service.topology.neighbors(new_id))


def test_incremental_beats_rebuild_at_n512():
    """The BENCH_serve acceptance claim: ≥3x median single-edge latency.

    Measured at the specified scale (n=512) on a short stream; the
    committed BENCH_serve.json records the full-stream numbers (~9x).
    """
    graph = erdos_renyi(512, 0.015, seed=0)
    cap = graph.max_degree() + 6
    ops = generate_ops("churn-heavy", 200, 0, graph, degree_cap=cap)

    def edge_median(rebuild):
        service = MISService(
            graph, degree_cap=cap, seed=0, rebuild_per_op=rebuild
        )
        report = service.run(ops)
        samples = [
            r.latency_s for r in report.results
            if r.status == "ok" and r.op.kind in ("ADD_EDGE", "DEL_EDGE")
        ]
        return float(np.median(samples))

    incremental = edge_median(False)
    rebuild = edge_median(True)
    assert rebuild >= 3.0 * incremental, (
        f"incremental {incremental * 1e6:.0f}µs vs rebuild "
        f"{rebuild * 1e6:.0f}µs — expected ≥3x"
    )


def test_cli_serve_smoke(tmp_path, capsys):
    from repro.cli import main

    ops_file = tmp_path / "ops.jsonl"
    json_file = tmp_path / "summary.json"
    rc = main([
        "serve", "--n", "48", "--workload", "burst", "--ops-count", "60",
        "--seed", "3", "--emit-ops", str(ops_file), "--json", str(json_file),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "final MIS legal: yes" in out
    payload = json.loads(json_file.read_text())
    assert payload["legal"] is True
    assert payload["summary"]["ops"] == 60
    # Replaying the emitted stream from a file serves the same ops.
    rc = main([
        "serve", "--n", "48", "--seed", "3", "--ops", str(ops_file),
    ])
    assert rc == 0
    assert "served 60 ops" in capsys.readouterr().out
