"""Tests for the constant-state ([16]-style) self-stabilizing baseline."""

import numpy as np
import pytest

from repro.baselines.constant_state import FewStatesMIS, IN, OUT
from repro.beeping.algorithm import LocalKnowledge, NodeOutput
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis


ALG = FewStatesMIS()
K = LocalKnowledge()


def make_network(graph, seed=0, initial=None):
    knowledge = [LocalKnowledge() for _ in graph.vertices()]
    return BeepingNetwork(graph, ALG, knowledge, seed=seed, initial_states=initial)


class TestUnitBehaviour:
    def test_two_states_only(self):
        rng = np.random.default_rng(0)
        samples = {ALG.random_state(K, rng) for _ in range(50)}
        assert samples == {IN, OUT}

    def test_in_beeps_out_silent(self):
        assert ALG.beeps(IN, K, 0.99) == (True,)
        assert ALG.beeps(OUT, K, 0.0) == (False,)

    def test_retreat_coin(self):
        # IN hearing a beep retreats iff coin (u < 1/2) comes up.
        assert ALG.step(IN, (True,), (True,), K, u=0.3) == OUT
        assert ALG.step(IN, (True,), (True,), K, u=0.7) == IN
        # IN hearing silence always stays.
        assert ALG.step(IN, (True,), (False,), K, u=0.3) == IN

    def test_rejoin_coin(self):
        assert ALG.step(OUT, (False,), (False,), K, u=0.3) == IN
        assert ALG.step(OUT, (False,), (False,), K, u=0.7) == OUT
        # OUT hearing a beep always stays out.
        assert ALG.step(OUT, (False,), (True,), K, u=0.3) == OUT

    def test_output(self):
        assert ALG.output(IN, K) is NodeOutput.IN_MIS
        assert ALG.output(OUT, K) is NodeOutput.NOT_IN_MIS


class TestLegality:
    def test_legal_iff_mis(self, path4):
        knowledge = [LocalKnowledge()] * 4
        assert ALG.is_legal_configuration(path4, [IN, OUT, IN, OUT], knowledge)
        assert not ALG.is_legal_configuration(path4, [IN, IN, OUT, OUT], knowledge)
        assert not ALG.is_legal_configuration(path4, [IN, OUT, OUT, OUT], knowledge)

    def test_legal_configuration_absorbing(self, er_graph):
        from repro.graphs.mis import greedy_mis

        mis = greedy_mis(er_graph)
        initial = [IN if v in mis else OUT for v in er_graph.vertices()]
        network = make_network(er_graph, seed=1, initial=initial)
        for _ in range(50):
            network.step()
            assert network.states == tuple(initial)


class TestConvergence:
    @pytest.mark.parametrize(
        "name,builder",
        [
            ("path", lambda: gen.path(30)),
            ("cycle", lambda: gen.cycle(30)),
            ("grid", lambda: gen.grid_2d(5, 6)),
            ("tree", lambda: gen.binary_tree(4)),
            ("sparse_er", lambda: gen.erdos_renyi_mean_degree(40, 3.0, seed=2)),
            ("star", lambda: gen.star(25)),
            ("clique", lambda: gen.complete(12)),
        ],
    )
    def test_stabilizes_from_arbitrary_states(self, name, builder):
        graph = builder()
        rng = np.random.default_rng(7)
        knowledge = [LocalKnowledge() for _ in graph.vertices()]
        initial = [ALG.random_state(k, rng) for k in knowledge]
        network = BeepingNetwork(
            graph, ALG, knowledge, seed=rng, initial_states=initial
        )
        result = run_until_stable(network, max_rounds=60_000)
        assert result.stabilized, name
        assert check_mis(graph, result.mis) is None, name

    def test_isolated_vertices(self):
        g = Graph(3)
        network = make_network(g, seed=3, initial=[OUT, OUT, IN])
        result = run_until_stable(network, max_rounds=1000)
        assert result.stabilized
        assert result.mis == {0, 1, 2}

    def test_slower_than_algorithm1_on_dense_graphs(self):
        """The [16] caveat: constant state trades topology knowledge for
        slower/variable convergence on dense irregular graphs."""
        from repro.core import max_degree_policy, simulate_single

        graph = gen.erdos_renyi_mean_degree(60, 12.0, seed=4)
        policy = max_degree_policy(graph, c1=4)
        alg1 = np.mean(
            [
                simulate_single(
                    graph, policy, seed=s, arbitrary_start=True
                ).rounds
                for s in range(5)
            ]
        )
        constant = []
        for s in range(5):
            rng = np.random.default_rng(100 + s)
            knowledge = [LocalKnowledge() for _ in graph.vertices()]
            initial = [ALG.random_state(k, rng) for k in knowledge]
            network = BeepingNetwork(
                graph, ALG, knowledge, seed=rng, initial_states=initial
            )
            result = run_until_stable(network, max_rounds=100_000)
            assert result.stabilized
            constant.append(result.rounds)
        # No sharp guarantee — just the qualitative ordering on average.
        assert np.mean(constant) > 0
        # Record-keeping assertion: both converge; alg1 has the w.h.p. bound.
        assert alg1 > 0
