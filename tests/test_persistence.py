"""Tests for the JSON result persistence."""

import json

import pytest

from repro.analysis.persistence import load_rows, load_sweep, save_rows, save_sweep
from repro.analysis.sweep import run_sweep


def make_sweep():
    return run_sweep(
        [{"n": 4}, {"n": 8}],
        lambda config, rng: config["n"] + rng.normal(),
        repetitions=5,
        master_seed=3,
    )


class TestSweepRoundTrip:
    def test_round_trip_preserves_samples(self, tmp_path):
        sweep = make_sweep()
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path, experiment="E1", parameters={"family": "er"})
        restored = load_sweep(path)
        assert len(restored.cells) == 2
        for original, loaded in zip(sweep.cells, restored.cells):
            assert loaded.config == dict(original.config)
            assert loaded.samples == original.samples
            assert loaded.summary.mean == pytest.approx(original.summary.mean)

    def test_envelope_metadata(self, tmp_path):
        import repro

        path = tmp_path / "sweep.json"
        save_sweep(make_sweep(), path, experiment="E1", parameters={"reps": 5})
        payload = json.loads(path.read_text())
        envelope = payload["envelope"]
        assert envelope["experiment"] == "E1"
        assert envelope["library_version"] == repro.__version__
        assert envelope["parameters"] == {"reps": 5}

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "rows.json"
        save_rows([{"a": 1}], path, experiment="E6")
        with pytest.raises(ValueError, match="not a sweep"):
            load_sweep(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(make_sweep(), path, experiment="E1")
        payload = json.loads(path.read_text())
        payload["envelope"]["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_sweep(path)

    def test_series_usable_after_reload(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(make_sweep(), path, experiment="E1")
        xs, ys = load_sweep(path).series("n")
        assert xs == [4.0, 8.0]


class TestRowsRoundTrip:
    def test_round_trip(self, tmp_path):
        rows = [{"n": 16, "rounds": 34.5}, {"n": 32, "rounds": 42.0}]
        path = tmp_path / "rows.json"
        save_rows(rows, path, experiment="E6")
        assert load_rows(path) == rows

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(make_sweep(), path, experiment="E1")
        with pytest.raises(ValueError, match="not rows"):
            load_rows(path)
