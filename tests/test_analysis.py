"""Tests for the analysis toolkit (stats, fitting, sweeps, tables)."""

import math

import numpy as np
import pytest

from repro.analysis.fitting import best_model, fit_all_models, fit_model
from repro.analysis.stats import bootstrap_ci, summarize, tail_fraction
from repro.analysis.sweep import run_sweep
from repro.analysis.tables import format_rows, format_table, series_sparkline


class TestStats:
    def test_summary_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.ci_low <= s.mean <= s.ci_high

    def test_summary_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 7.0

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_format(self):
        text = summarize([1.0, 2.0, 3.0]).format()
        assert "±" in text and "[1.0, 3.0]" in text

    def test_bootstrap_deterministic(self):
        data = list(np.random.default_rng(1).normal(10, 2, 40))
        assert bootstrap_ci(data) == bootstrap_ci(data)

    def test_bootstrap_brackets_true_mean(self):
        data = list(np.random.default_rng(2).normal(10, 1, 200))
        low, high = bootstrap_ci(data)
        assert low < 10 < high

    def test_tail_fraction(self):
        assert tail_fraction([1, 2, 3, 4], 2.5) == 0.5
        assert tail_fraction([1, 1], 5) == 0.0


class TestFitting:
    def _generate(self, f, noise_seed=0):
        rng = np.random.default_rng(noise_seed)
        sizes = [2 ** k for k in range(4, 14)]
        rounds = [f(n) + rng.normal(0, 0.1) for n in sizes]
        return sizes, rounds

    def test_log_data_prefers_log_model(self):
        sizes, rounds = self._generate(lambda n: 3 * math.log(n) + 5)
        fit = best_model(sizes, rounds)
        assert fit.model == "log"
        assert fit.r_squared > 0.999
        assert fit.coefficients[0] == pytest.approx(3.0, abs=0.1)

    def test_linear_data_prefers_linear_model(self):
        sizes, rounds = self._generate(lambda n: 0.5 * n + 2)
        assert best_model(sizes, rounds).model == "linear"

    def test_sqrt_data_prefers_sqrt(self):
        sizes, rounds = self._generate(lambda n: 2 * math.sqrt(n))
        assert best_model(sizes, rounds).model == "sqrt"

    def test_log_loglog_distinguishable_from_log(self):
        sizes, rounds = self._generate(
            lambda n: 4 * math.log(n) * math.log(math.log(n))
        )
        fits = fit_all_models(sizes, rounds)
        assert fits["log_loglog"].rmse < fits["log"].rmse

    def test_predict(self):
        fit = fit_model([10, 100, 1000], [1, 2, 3], "log")
        assert fit.predict(100) == pytest.approx(2.0, abs=0.01)

    def test_format(self):
        fit = fit_model([10, 100, 1000], [1, 2, 3], "log")
        assert "log" in fit.format() and "R²" in fit.format()

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_model([1], [1], "log")
        with pytest.raises(ValueError):
            fit_model([1, 2], [1], "log")
        with pytest.raises(ValueError):
            fit_model([1, 2], [1, 2], "cubic")


class TestSweep:
    def test_reproducible_and_summarized(self):
        configs = [{"n": 4}, {"n": 8}]

        def measure(config, rng):
            return config["n"] + rng.normal()

        a = run_sweep(configs, measure, repetitions=5, master_seed=1)
        b = run_sweep(configs, measure, repetitions=5, master_seed=1)
        assert a.cells[0].samples == b.cells[0].samples
        assert a.cells[1].summary.mean == pytest.approx(8.0, abs=2.0)

    def test_seeds_independent_across_cells(self):
        def measure(config, rng):
            return rng.random()

        result = run_sweep([{"i": 0}, {"i": 1}], measure, repetitions=3, master_seed=2)
        assert result.cells[0].samples != result.cells[1].samples

    def test_series_sorted_by_x(self):
        def measure(config, rng):
            return float(config["n"]) * 2

        result = run_sweep(
            [{"n": 32}, {"n": 8}, {"n": 16}], measure, repetitions=2
        )
        xs, ys = result.series("n")
        assert xs == [8.0, 16.0, 32.0]
        assert ys == [16.0, 32.0, 64.0]

    def test_all_samples_flattened(self):
        result = run_sweep(
            [{"n": 2}], lambda c, rng: 1.0, repetitions=4
        )
        xs, ys = result.all_samples("n")
        assert xs == [2.0] * 4 and ys == [1.0] * 4

    def test_table_rendering(self):
        result = run_sweep([{"n": 2}], lambda c, rng: 1.0, repetitions=2)
        table = result.to_table(["n"], title="demo")
        assert "demo" in table and "mean" in table and "1.0" in table

    def test_progress_callback(self):
        lines = []
        run_sweep(
            [{"n": 1}, {"n": 2}],
            lambda c, rng: 0.0,
            repetitions=1,
            progress=lines.append,
        )
        assert len(lines) == 2

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([{"n": 1}], lambda c, rng: 0.0, repetitions=0)


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [33, 4.25]])
        lines = table.splitlines()
        assert lines[0].strip().startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_format_table_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.startswith("T\n=")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert "a" in text and "3" in text

    def test_format_rows_empty(self):
        assert format_rows([], title="none") == "none"

    def test_sparkline(self):
        line = series_sparkline([0, 1, 2, 3, 4, 5])
        assert len(line) == 6
        assert line[0] != line[-1]

    def test_sparkline_flat_and_empty(self):
        assert series_sparkline([]) == ""
        assert len(set(series_sparkline([2, 2, 2]))) == 1

    def test_sparkline_buckets_long_series(self):
        assert len(series_sparkline(list(range(1000)), width=40)) == 40
