"""Unit tests for the graph generators."""


import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.properties import (
        is_connected,
    triangle_count,
)


class TestDeterministicFamilies:
    def test_empty(self):
        g = gen.empty(4)
        assert g.num_vertices == 4 and g.num_edges == 0

    def test_path(self):
        g = gen.path(5)
        assert g.num_edges == 4
        assert g.degree(0) == g.degree(4) == 1
        assert all(g.degree(v) == 2 for v in (1, 2, 3))

    def test_path_trivial(self):
        assert gen.path(1).num_edges == 0
        assert gen.path(0).num_vertices == 0

    def test_cycle(self):
        g = gen.cycle(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            gen.cycle(2)

    def test_star(self):
        g = gen.star(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_complete(self):
        g = gen.complete(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(2, 3)
        assert g.num_edges == 6
        assert not g.has_edge(0, 1)  # within left part
        assert not g.has_edge(2, 3)  # within right part
        assert g.has_edge(0, 2)

    def test_grid(self):
        g = gen.grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.degree(0) == 2  # corner
        assert g.degree(5) == 4  # interior

    def test_torus_regular(self):
        g = gen.torus_2d(4, 5)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            gen.torus_2d(2, 5)

    def test_triangular_lattice_has_triangles(self):
        g = gen.triangular_lattice(4, 4)
        assert triangle_count(g) > 0
        assert is_connected(g)

    def test_binary_tree(self):
        g = gen.binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert is_connected(g)
        assert g.degree(0) == 2  # root

    def test_binary_tree_depth0(self):
        assert gen.binary_tree(0).num_vertices == 1

    def test_hypercube(self):
        g = gen.hypercube(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert is_connected(g)

    def test_caterpillar(self):
        g = gen.caterpillar(4, 2)
        assert g.num_vertices == 4 + 8
        assert g.num_edges == 3 + 8
        assert is_connected(g)

    def test_lollipop(self):
        g = gen.lollipop(4, 3)
        assert g.num_vertices == 7
        assert g.num_edges == 6 + 3
        assert is_connected(g)

    def test_barbell(self):
        g = gen.barbell(4, 2)
        assert g.num_vertices == 10
        assert is_connected(g)
        assert g.num_edges == 2 * 6 + 3


class TestRandomFamilies:
    def test_er_reproducible(self):
        a = gen.erdos_renyi(50, 0.1, seed=7)
        b = gen.erdos_renyi(50, 0.1, seed=7)
        assert a == b

    def test_er_different_seeds_differ(self):
        a = gen.erdos_renyi(50, 0.1, seed=7)
        b = gen.erdos_renyi(50, 0.1, seed=8)
        assert a != b

    def test_er_edge_count_plausible(self):
        n, p = 200, 0.05
        g = gen.erdos_renyi(n, p, seed=1)
        expected = p * n * (n - 1) / 2
        assert 0.5 * expected < g.num_edges < 1.5 * expected

    def test_er_extremes(self):
        assert gen.erdos_renyi(10, 0.0, seed=1).num_edges == 0
        assert gen.erdos_renyi(6, 1.0, seed=1).num_edges == 15

    def test_er_denormal_p_regression(self):
        # Regression (found by the stateful fuzzer): denormally small p
        # made the geometric skip length overflow float range.
        for p in (5e-324, 1e-300, 1e-18):
            assert gen.erdos_renyi(12, p, seed=1).num_edges == 0

    def test_er_invalid_p(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, 1.5)

    def test_er_mean_degree(self):
        g = gen.erdos_renyi_mean_degree(300, 10.0, seed=2)
        mean = 2 * g.num_edges / g.num_vertices
        assert 8.0 < mean < 12.0

    def test_random_regular(self):
        g = gen.random_regular(20, 4, seed=3)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_random_regular_parity_rejected(self):
        with pytest.raises(ValueError, match="even"):
            gen.random_regular(5, 3)

    def test_random_regular_degree_bounds(self):
        with pytest.raises(ValueError):
            gen.random_regular(4, 4)
        assert gen.random_regular(5, 0).num_edges == 0

    def test_random_bipartite(self):
        g = gen.random_bipartite(10, 12, 0.3, seed=4)
        for u, v in g.edges:
            assert (u < 10) != (v < 10)

    def test_barabasi_albert(self):
        g = gen.barabasi_albert(100, 3, seed=5)
        assert g.num_vertices == 100
        assert is_connected(g)
        # Every non-seed vertex attached with exactly m distinct edges.
        assert g.num_edges == 3 + 3 * (100 - 4)
        # Scale-free skew: max degree far above m.
        assert g.max_degree() >= 9

    def test_barabasi_albert_invalid(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(5, 5)

    def test_power_law_cluster(self):
        g = gen.power_law_cluster(100, 3, 0.8, seed=6)
        low = gen.power_law_cluster(100, 3, 0.0, seed=6)
        assert g.num_vertices == 100
        assert triangle_count(g) > triangle_count(low) * 0.5  # clustering knob works

    def test_unit_disk_radius_monotone(self):
        sparse = gen.unit_disk(100, 0.05, seed=7)
        dense = gen.unit_disk(100, 0.3, seed=7)
        assert dense.num_edges > sparse.num_edges

    def test_unit_disk_distances_respected(self):
        # With r covering the whole square every pair is connected.
        g = gen.unit_disk(15, 2.0, seed=8)
        assert g.num_edges == 15 * 14 // 2

    def test_watts_strogatz_ring_degrees(self):
        g = gen.watts_strogatz(30, 4, 0.0, seed=1)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.num_edges == 60

    def test_watts_strogatz_rewiring_preserves_edge_count(self):
        base = gen.watts_strogatz(40, 4, 0.0, seed=2)
        rewired = gen.watts_strogatz(40, 4, 0.5, seed=2)
        assert rewired.num_edges == base.num_edges
        assert rewired != base

    def test_watts_strogatz_validation(self):
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            gen.watts_strogatz(4, 4, 0.1)  # k >= n
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 4, 1.5)  # bad p

    def test_complete_multipartite(self):
        g = gen.complete_multipartite([2, 3])
        assert g == gen.complete_bipartite(2, 3)
        g3 = gen.complete_multipartite([2, 2, 2])
        assert g3.num_edges == 12
        assert not g3.has_edge(0, 1)
        assert g3.has_edge(0, 2)

    def test_complete_multipartite_empty_parts(self):
        assert gen.complete_multipartite([0, 3, 0]).num_edges == 0

    def test_wheel(self):
        g = gen.wheel(6)
        assert g.degree(0) == 5  # hub
        assert all(g.degree(v) == 3 for v in range(1, 6))
        with pytest.raises(ValueError):
            gen.wheel(3)

    def test_random_tree_is_tree(self):
        g = gen.random_tree(40, seed=9)
        assert g.num_edges == 39
        assert is_connected(g)

    def test_random_tree_small(self):
        assert gen.random_tree(1).num_vertices == 1
        assert gen.random_tree(2).num_edges == 1


class TestByName:
    @pytest.mark.parametrize("name", gen.FAMILY_NAMES)
    def test_all_families_buildable(self, name):
        g = gen.by_name(name, 30, seed=11)
        assert g.num_vertices >= 16  # roughly the requested size

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            gen.by_name("nope", 10)

    def test_generator_object_accepted(self):
        rng = np.random.default_rng(0)
        g = gen.erdos_renyi(20, 0.2, seed=rng)
        assert g.num_vertices == 20
