"""Tests for the line-graph construction."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.linegraph import line_graph


class TestStructure:
    def test_path_line_graph_is_shorter_path(self):
        # L(P_4) = P_3.
        lg = line_graph(gen.path(4))
        assert lg.graph.num_vertices == 3
        assert lg.graph.edges == ((0, 1), (1, 2))

    def test_cycle_line_graph_is_cycle(self):
        lg = line_graph(gen.cycle(5))
        assert lg.graph.num_vertices == 5
        assert all(lg.graph.degree(v) == 2 for v in lg.graph.vertices())

    def test_star_line_graph_is_complete(self):
        # All star edges share the hub → L(K_{1,k}) = K_k.
        lg = line_graph(gen.star(6))
        assert lg.graph == gen.complete(5)

    def test_triangle_line_graph_is_triangle(self):
        lg = line_graph(Graph(3, [(0, 1), (1, 2), (0, 2)]))
        assert lg.graph.num_edges == 3

    def test_edge_count_formula(self):
        # |E(L(G))| = Σ_v C(deg(v), 2).
        g = gen.erdos_renyi_mean_degree(40, 5.0, seed=1)
        lg = line_graph(g)
        expected = sum(d * (d - 1) // 2 for d in g.degrees())
        assert lg.graph.num_edges == expected

    def test_empty_and_edgeless(self):
        assert line_graph(Graph(0)).graph.num_vertices == 0
        assert line_graph(Graph(5)).graph.num_vertices == 0


class TestMapping:
    def test_vertex_for_edge_both_orientations(self):
        g = gen.path(4)
        lg = line_graph(g)
        assert lg.vertex_for_edge(0, 1) == lg.vertex_for_edge(1, 0)
        assert lg.edge_of[lg.vertex_for_edge(2, 3)] == (2, 3)

    def test_vertex_for_missing_edge(self):
        lg = line_graph(gen.path(4))
        with pytest.raises(KeyError):
            lg.vertex_for_edge(0, 3)

    def test_round_trip(self):
        g = gen.erdos_renyi_mean_degree(20, 4.0, seed=2)
        lg = line_graph(g)
        indices = [lg.vertex_for_edge(u, v) for u, v in g.edges]
        assert lg.edges_for_vertices(indices) == g.edges

    def test_adjacency_iff_shared_endpoint(self):
        g = gen.erdos_renyi_mean_degree(15, 4.0, seed=3)
        lg = line_graph(g)
        for i in lg.graph.vertices():
            for j in lg.graph.vertices():
                if i >= j:
                    continue
                shares = bool(set(lg.edge_of[i]) & set(lg.edge_of[j]))
                assert lg.graph.has_edge(i, j) == shares
