"""Tests for the Luby message-passing reference baseline."""

import pytest

from repro.baselines.luby import luby_mis
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis

from conftest import small_graph_zoo


class TestCorrectness:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_valid_mis_everywhere(self, name, graph):
        result = luby_mis(graph, seed=1)
        assert check_mis(graph, result.mis) is None, name

    def test_empty_graph(self):
        result = luby_mis(Graph(0), seed=0)
        assert result.mis == frozenset() and result.rounds == 0

    def test_edgeless_graph_one_round(self):
        result = luby_mis(Graph(5), seed=0)
        assert result.mis == {0, 1, 2, 3, 4}
        assert result.rounds == 1

    def test_complete_graph_one_winner(self):
        result = luby_mis(gen.complete(30), seed=2)
        assert len(result.mis) == 1


class TestBehaviour:
    def test_seeded_determinism(self, er_graph):
        a = luby_mis(er_graph, seed=9)
        b = luby_mis(er_graph, seed=9)
        assert a.mis == b.mis and a.rounds == b.rounds

    def test_round_counts_logarithmic_regime(self):
        g = gen.erdos_renyi_mean_degree(400, 8.0, seed=3)
        result = luby_mis(g, seed=4)
        # log2(400) ≈ 8.6; Luby finishes within a small multiple.
        assert result.rounds <= 30

    def test_max_rounds_guard(self, er_graph):
        with pytest.raises(RuntimeError):
            luby_mis(er_graph, seed=1, max_rounds=0)
