"""Cross-validation: the vectorized engine must reproduce the reference
engine's trajectories bit-for-bit (same seed, same initial levels).

This is the strongest correctness evidence for the fast engine: every
branch of the update rule, the reception semantics, and the randomness
discipline are all exercised on every round of every graph below.
"""

import numpy as np
import pytest

from repro.beeping.network import BeepingNetwork
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.algorithm_two_channel import TwoChannelMIS
from repro.core.knowledge import max_degree_policy, neighborhood_degree_policy, own_degree_policy
from repro.core.vectorized import SingleChannelEngine, TwoChannelEngine
from repro.graphs import generators as gen

from conftest import small_graph_zoo


ROUNDS = 120


def _arbitrary_single_levels(policy, rng):
    ell = np.asarray(policy.ell_max)
    return rng.integers(-ell, ell + 1)


def _arbitrary_two_channel_levels(policy, rng):
    ell = np.asarray(policy.ell_max)
    return rng.integers(0, ell + 1)


@pytest.mark.parametrize("name,graph", small_graph_zoo())
def test_single_channel_trajectories_identical(name, graph):
    policy = max_degree_policy(graph, c1=4)
    init = _arbitrary_single_levels(policy, np.random.default_rng(100))
    seed = 42

    fast = SingleChannelEngine(graph, policy, seed=seed)
    fast.set_levels(init)
    reference = BeepingNetwork(
        graph,
        SelfStabilizingMIS(),
        policy.knowledge(graph),
        seed=seed,
        initial_states=[int(x) for x in init],
    )
    for round_index in range(ROUNDS):
        fast.step()
        reference.step()
        assert list(fast.levels) == list(reference.states), (
            f"{name}: divergence at round {round_index}"
        )
    # Legality predicates agree too.
    assert fast.is_legal() == reference.is_legal()


@pytest.mark.parametrize("name,graph", small_graph_zoo())
def test_two_channel_trajectories_identical(name, graph):
    policy = neighborhood_degree_policy(graph, c1=4)
    init = _arbitrary_two_channel_levels(policy, np.random.default_rng(7))
    seed = 77

    fast = TwoChannelEngine(graph, policy, seed=seed)
    fast.set_levels(init)
    reference = BeepingNetwork(
        graph,
        TwoChannelMIS(),
        policy.knowledge(graph),
        seed=seed,
        initial_states=[int(x) for x in init],
    )
    for round_index in range(ROUNDS):
        fast.step()
        reference.step()
        assert list(fast.levels) == list(reference.states), (
            f"{name}: divergence at round {round_index}"
        )
    assert fast.is_legal() == reference.is_legal()


def test_heterogeneous_ell_max_trajectories_identical():
    """Own-degree policies give per-vertex ℓmax — the trickiest case."""
    graph = gen.barabasi_albert(40, 2, seed=8)
    policy = own_degree_policy(graph, c1=4)
    init = _arbitrary_single_levels(policy, np.random.default_rng(3))

    fast = SingleChannelEngine(graph, policy, seed=5)
    fast.set_levels(init)
    reference = BeepingNetwork(
        graph,
        SelfStabilizingMIS(),
        policy.knowledge(graph),
        seed=5,
        initial_states=[int(x) for x in init],
    )
    for _ in range(200):
        fast.step()
        reference.step()
    assert list(fast.levels) == list(reference.states)


def test_constant_state_trajectories_identical():
    """The two-state baseline's vectorized engine vs the reference."""
    import numpy as np

    from repro.baselines.constant_state import FewStatesMIS, IN, OUT
    from repro.beeping.algorithm import LocalKnowledge
    from repro.core.vectorized import ConstantStateEngine

    graph = gen.erdos_renyi_mean_degree(50, 5.0, seed=3)
    seed = 42
    fast = ConstantStateEngine(graph, seed=seed)
    init = np.random.default_rng(9).integers(0, 2, graph.num_vertices).astype(bool)
    fast.set_membership(init)
    reference = BeepingNetwork(
        graph,
        FewStatesMIS(),
        [LocalKnowledge() for _ in graph.vertices()],
        seed=seed,
        initial_states=[IN if b else OUT for b in init],
    )
    for round_index in range(200):
        fast.step()
        reference.step()
        ref_membership = tuple(s == IN for s in reference.states)
        assert tuple(bool(x) for x in fast.in_mis) == ref_membership, (
            f"divergence at round {round_index}"
        )
    assert fast.is_legal() == reference.is_legal()


@pytest.mark.parametrize("name,graph", small_graph_zoo())
def test_collector_series_identical_across_engines(name, graph):
    """Observability differential: one RunCollector per engine, and the
    per-round metric series (|I_t|, |S_t|, prominent, legality, beeps)
    must be identical between the vectorized and reference engines —
    the observability layer sees bit-identical trajectories too."""
    from repro.beeping.simulator import run_until_stable
    from repro.core.engines.single import simulate_single
    from repro.obs import RunCollector, StructureView

    policy = max_degree_policy(graph, c1=4)
    seed = 13

    fast_collector = RunCollector(StructureView.from_policy(graph, policy))
    fast = simulate_single(
        graph, policy, seed=seed, arbitrary_start=False,
        max_rounds=2000, collector=fast_collector,
    )
    reference = BeepingNetwork(
        graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=seed
    )
    reference_collector = RunCollector(StructureView.from_policy(graph, policy))
    slow = run_until_stable(reference, max_rounds=2000, collector=reference_collector)

    assert fast.stabilized and slow.stabilized
    assert fast.rounds == slow.rounds
    for column in ("i_size", "s_size", "prominent", "legal", "beeps"):
        assert fast_collector.series(column) == reference_collector.series(column), (
            f"{name}: column {column!r}"
        )


def test_mis_sets_agree_after_stabilization():
    graph = gen.erdos_renyi_mean_degree(50, 5.0, seed=6)
    policy = max_degree_policy(graph, c1=4)
    seed = 31

    fast = SingleChannelEngine(graph, policy, seed=seed)
    reference = BeepingNetwork(
        graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=seed
    )
    for _ in range(2000):
        if fast.is_legal():
            break
        fast.step()
        reference.step()
    assert fast.is_legal() and reference.is_legal()
    algorithm = SelfStabilizingMIS()
    reference_mis = algorithm.stable_sets(
        graph, reference.states, reference.knowledge
    ).mis
    assert fast.mis_vertices() == reference_mis
