"""Tests of the reception-model variants (full vs half duplex).

The paper works in the *full-duplex* beeping model (a transmitter still
hears its neighbors — also called beeping with collision detection).
Algorithm 1's membership certificate is a *solo* beep, which is only
detectable with full duplex.  These tests pin down that dependence.
"""

from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import uniform_policy
from repro.graphs import generators as gen
from repro.graphs.graph import Graph


def make_network(graph, ell=4, seed=0, full_duplex=True, initial=None):
    policy = uniform_policy(graph, ell)
    return BeepingNetwork(
        graph,
        SelfStabilizingMIS(),
        policy.knowledge(graph),
        seed=seed,
        initial_states=initial,
        full_duplex=full_duplex,
    )


class TestFullDuplexDefault:
    def test_default_is_full_duplex(self, path4):
        assert make_network(path4).full_duplex is True


class TestHalfDuplexSemantics:
    def test_transmitter_is_deaf(self):
        """On K2 with both vertices beeping, full duplex delivers the
        neighbor's beep; half duplex delivers silence."""
        g = Graph(2, [(0, 1)])
        # Both prominent → both beep deterministically.
        full = make_network(g, seed=1, initial=[0, 0])
        full.step()
        # Full duplex: both heard each other → both increment.
        assert full.states == (1, 1)

        half = make_network(g, seed=1, full_duplex=False, initial=[0, 0])
        half.step()
        # Half duplex: each beeped, heard nothing → both claim the MIS.
        assert half.states == (-4, -4)

    def test_half_duplex_breaks_algorithm1_on_k2(self):
        """The deterministic failure: two adjacent vertices that both
        reached −ℓmax keep re-claiming membership forever under half
        duplex (each beeps, hears nothing, resets) — the configuration
        where both are 'in the MIS' is absorbing but never legal."""
        g = Graph(2, [(0, 1)])
        network = make_network(g, seed=2, full_duplex=False, initial=[-4, -4])
        result = run_until_stable(network, max_rounds=300)
        assert not result.stabilized
        assert network.states == (-4, -4)

    def test_full_duplex_resolves_the_same_configuration(self):
        g = Graph(2, [(0, 1)])
        network = make_network(g, seed=2, full_duplex=True, initial=[-4, -4])
        result = run_until_stable(network, max_rounds=500)
        assert result.stabilized
        assert len(result.mis) == 1

    def test_half_duplex_nonbeeping_vertices_still_hear(self):
        """Half duplex only deafens transmitters: a silent vertex's
        reception is unchanged."""
        g = gen.star(4)
        # Hub prominent (beeps surely), leaves at ℓmax (silent).
        network = make_network(g, seed=3, full_duplex=False,
                               initial=[0, 4, 4, 4])
        network.step()
        # Leaves heard the hub and stay at ℓmax; hub heard nothing
        # (nobody else beeped) and resets to -ℓmax.
        assert network.states == (-4, 4, 4, 4)


class TestHalfDuplexStatistics:
    def test_half_duplex_inflates_false_claims(self):
        """On a clique, count rounds where two adjacent vertices hold
        negative levels simultaneously — impossible under full duplex
        past the warm-up horizon (Lemma 3.4's certificate), frequent
        under half duplex."""
        g = gen.complete(6)

        def conflicting_rounds(full_duplex):
            network = make_network(g, ell=4, seed=5, full_duplex=full_duplex)
            count = 0
            for _ in range(150):
                network.step()
                negatives = [s for s in network.states if s < 0]
                if len(negatives) >= 2:
                    count += 1
            return count

        # Warm-up horizon is 4; run length 150 makes the contrast stark.
        assert conflicting_rounds(False) > 20
        assert conflicting_rounds(True) == 0
