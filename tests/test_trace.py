"""Tests for execution tracing and metric collection."""

from repro.beeping.network import BeepingNetwork
from repro.beeping.trace import ExecutionTrace, RoundMetrics, TraceRecorder
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import max_degree_policy


def make_network(graph, seed=0):
    policy = max_degree_policy(graph, c1=4)
    return BeepingNetwork(
        graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=seed
    )


def stable_counter(network):
    algorithm = network.algorithm
    return len(
        algorithm.stable_sets(network.graph, network.states, network.knowledge).stable
    )


class TestTraceRecorder:
    def test_records_one_metrics_per_round(self, er_graph):
        network = make_network(er_graph)
        recorder = TraceRecorder()
        trace = recorder.run(network, rounds=12)
        assert len(trace) == 12
        assert [m.round_index for m in trace.rounds] == list(range(12))
        assert network.round_index == 12

    def test_stable_counter_plumbed(self, er_graph):
        network = make_network(er_graph)
        recorder = TraceRecorder(stable_counter=stable_counter)
        trace = recorder.run(network, rounds=30)
        counts = trace.series("stable_count")
        assert all(c >= 0 for c in counts)
        # S_t is monotone non-decreasing.
        assert counts == sorted(counts)

    def test_stable_count_defaults_to_none(self, path4):
        network = make_network(path4)
        recorder = TraceRecorder()
        trace = recorder.run(network, rounds=3)
        assert trace.series("stable_count") == [None, None, None]

    def test_mean_skips_unavailable_stable_counts(self, path4):
        # Regression: the old -1 sentinel used to be folded into
        # averages; a counter-less trace must now report "unavailable".
        network = make_network(path4)
        recorder = TraceRecorder()
        trace = recorder.run(network, rounds=3)
        assert trace.mean("stable_count") is None
        assert trace.mean("mis_size") is not None

    def test_snapshots(self, path4):
        network = make_network(path4)
        recorder = TraceRecorder(snapshot_every=2)
        recorder.run(network, rounds=5)
        assert sorted(recorder.trace.snapshots) == [0, 2, 4]
        assert len(recorder.trace.snapshots[0]) == 4


class TestExecutionTrace:
    def _trace_with(self, legal_flags):
        trace = ExecutionTrace()
        for i, legal in enumerate(legal_flags):
            trace.append(
                RoundMetrics(
                    round_index=i,
                    beeps_per_channel=(i,),
                    mis_size=i,
                    stable_count=i,
                    legal=legal,
                )
            )
        return trace

    def test_first_legal_round(self):
        trace = self._trace_with([False, False, True, True])
        assert trace.first_legal_round() == 2

    def test_first_legal_round_none(self):
        assert self._trace_with([False, False]).first_legal_round() is None

    def test_total_beeps(self):
        trace = self._trace_with([False] * 4)
        assert trace.total_beeps() == 0 + 1 + 2 + 3

    def test_series_and_rows(self):
        trace = self._trace_with([False, True])
        assert trace.series("mis_size") == [0, 1]
        rows = trace.as_rows()
        assert rows[1]["legal"] is True
        assert rows[0]["beeps"] == (0,)
