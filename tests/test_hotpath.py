"""The hot-path hygiene analyzer & allocation auditor: every RPR8xx rule.

Covers: the fixture corpus (one flagging and one clean file per rule,
with the RPR801 helper chain split across a module boundary and a two-hop
interprocedural flag case), hot-region scoping (setup escapes, driver
loop bodies, ``# repro: cold``), escape analysis, pragma handling at
both granularities, baseline round-trips, SARIF output, the ``repro
check`` integration, catalogue/docs sync, the wall-time budget on the
real tree, and the runtime steady-state allocation audit (tiny combo
unconditionally, the full grid under ``REPRO_SANITIZE=1``).
"""

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.dataflow.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.devtools.dataflow.sarif import to_sarif
from repro.devtools.hotpath import (
    HOTPATH_RULES,
    analyze_paths,
    analyze_sources,
    hotpath_catalogue,
)
from repro.devtools.hotpath.audit import (
    DEFAULT_THRESHOLD_BYTES,
    allocation_summary,
    run_allocation_audit,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "dataflow_fixtures"

ALL_RULE_IDS = ("RPR801", "RPR802", "RPR803", "RPR804", "RPR805")

_SANITIZE = bool(os.environ.get("REPRO_SANITIZE"))


@pytest.fixture(scope="module")
def corpus_report():
    return analyze_paths([str(FIXTURES)], root=REPO_ROOT)


def rules_in(report, path_fragment):
    return sorted(
        v.rule for v in report.violations if path_fragment in v.path
    )


# ----------------------------------------------------------------------
# The fixture corpus: each rule fires on its flag file, never on clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_catches_its_seeded_fixture(corpus_report, rule_id):
    stem = f"df{rule_id[3:]}_flag"
    flagged = rules_in(corpus_report, stem)
    assert flagged and set(flagged) == {rule_id}


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_passes_its_clean_fixture(corpus_report, rule_id):
    stem = f"df{rule_id[3:]}_clean"
    assert rules_in(corpus_report, stem) == []


def test_corpus_parses_cleanly(corpus_report):
    assert corpus_report.errors == []
    assert rules_in(corpus_report, "df801_lib") == []


def test_rpr801_charges_the_two_hop_helper_at_the_hot_call_site(corpus_report):
    """step → _staging → df801_lib.fresh_levels: flagged where discarded."""
    [violation] = [
        v for v in corpus_report.violations
        if "df801_flag" in v.path and "only returns fresh arrays" in v.message
    ]
    assert violation.symbol.endswith("ToyEngine.step")
    assert "_staging" in violation.message


def test_rpr804_flags_both_the_constructor_and_np_where(corpus_report):
    flagged = [
        v for v in corpus_report.violations if "df804_flag" in v.path
    ]
    assert len(flagged) == 2
    assert any("numpy" in v.message or "np.where" in v.message
               for v in flagged)


# ----------------------------------------------------------------------
# Hot-region scoping on in-memory sources
# ----------------------------------------------------------------------
def test_escaped_allocations_are_the_callers_problem():
    """Returning or attribute-storing a fresh array transfers ownership."""
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "class ToyEngine:\n"
            "    def step(self):\n"
            "        beeps = np.zeros(8, dtype=bool)\n"
            "        return beeps\n"
            "    def stash(self):\n"
            "        self.last = np.zeros(8, dtype=np.int64)[0:4]\n"
        )
    })
    assert report.violations == []


def test_out_kwarg_draws_are_the_blessed_pattern():
    flagged = analyze_sources({
        "m": (
            "class ToyEngine:\n"
            "    def step(self):\n"
            "        draws = self.rng.random(8)\n"
            "        return bool(draws[0] < 0.5)\n"
        )
    })
    assert [v.rule for v in flagged.violations] == ["RPR801"]
    quiet = analyze_sources({
        "m": (
            "class ToyEngine:\n"
            "    def step(self):\n"
            "        self.rng.random(out=self._draws)\n"
            "        return bool(self._draws[0] < 0.5)\n"
        )
    })
    assert quiet.violations == []


def test_driver_prologue_is_exempt_but_its_loop_body_is_not():
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "class ToyEngine:\n"
            "    def run(self, rounds):\n"
            "        warm = np.zeros(8)\n"
            "        warm += 1\n"
            "        for _ in range(rounds):\n"
            "            tmp = np.zeros(8)\n"
            "            tmp += 1\n"
            "        return None\n"
        )
    })
    assert [(v.rule, v.line) for v in report.violations] == [("RPR801", 7)]


def test_setup_methods_are_never_part_of_the_hot_region():
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "class ToyEngine:\n"
            "    def step(self):\n"
            "        self.rebind(8)\n"
            "        return None\n"
            "    def rebind(self, n):\n"
            "        scratch = np.zeros(n)\n"
            "        scratch += 1\n"
            "        return None\n"
        )
    })
    assert report.violations == []


def test_cold_pragma_excludes_a_helper_from_the_hot_region():
    source = (
        "import numpy as np\n"
        "class ToyEngine:\n"
        "    def step(self):\n"
        "        return self._debug_view()\n"
        "    def _debug_view(self):{marker}\n"
        "        scratch = np.zeros(8)\n"
        "        scratch += 1\n"
        "        return None\n"
    )
    hot = analyze_sources({"m": source.format(marker="")})
    assert [v.rule for v in hot.violations] == ["RPR801"]
    cold = analyze_sources({"m": source.format(marker="  # repro: cold")})
    assert cold.violations == []


def test_non_engine_classes_are_not_hot_roots():
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "class ReferenceNode:\n"
            "    def step(self):\n"
            "        scratch = np.zeros(8)\n"
            "        scratch += 1\n"
            "        return None\n"
        )
    })
    assert report.violations == []


def test_engine_base_subclasses_are_hot_through_inheritance():
    report = analyze_sources({
        "base": (
            "class EngineBase:\n"
            "    def until_stable(self):\n"
            "        return None\n"
        ),
        "m": (
            "import numpy as np\n"
            "from base import EngineBase\n"
            "class Replica(EngineBase):\n"
            "    def step(self):\n"
            "        scratch = np.zeros(8)\n"
            "        scratch += 1\n"
            "        return None\n"
        ),
    })
    assert [v.rule for v in report.violations] == ["RPR801"]


def test_rpr805_flags_the_profile_decorator():
    report = analyze_sources({
        "m": (
            "def profile(fn):\n"
            "    return fn\n"
            "class ToyEngine:\n"
            "    @profile\n"
            "    def step(self):\n"
            "        return None\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR805"]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_a_hotpath_finding():
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "class ToyEngine:\n"
            "    def step(self):\n"
            "        tmp = np.zeros(8)  # repro: allow[RPR801]\n"
            "        tmp += 1\n"
            "        return None\n"
        )
    })
    assert report.violations == []


def test_file_pragma_is_rule_specific():
    report = analyze_sources({
        "m": (
            "# repro: allow-file[RPR801]\n"
            "import numpy as np\n"
            "class ToyEngine:\n"
            "    def step(self):\n"
            "        tmp = np.zeros(8)\n"
            "        tmp += 1\n"
            "        cast = self.levels.astype(np.float64)\n"
            "        return float(cast[0])\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR802"]


# ----------------------------------------------------------------------
# Baseline round-trip (shared plumbing with the dataflow analyzer)
# ----------------------------------------------------------------------
def test_baseline_round_trip_suppresses_known_findings(tmp_path, corpus_report):
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, corpus_report.violations)
    fingerprints = load_baseline(baseline_path)
    assert apply_baseline(corpus_report.violations, fingerprints) == []
    fresh = analyze_sources({
        "other": (
            "import numpy as np\n"
            "class NewEngine:\n"
            "    def step(self):\n"
            "        tmp = np.zeros(8)\n"
            "        tmp += 1\n"
            "        return None\n"
        )
    }).violations
    assert apply_baseline(fresh, fingerprints) == fresh


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_includes_the_hotpath_catalogue(corpus_report):
    log = to_sarif([v.to_json() for v in corpus_report.violations])
    [run] = log["runs"]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert set(ALL_RULE_IDS) <= rule_ids
    assert len(run["results"]) == len(corpus_report.violations)
    for result in run["results"]:
        assert result["ruleIndex"] >= 0  # every RPR8xx is catalogued


# ----------------------------------------------------------------------
# Catalogue / docs sync
# ----------------------------------------------------------------------
def test_hotpath_catalogue_is_complete():
    rows = hotpath_catalogue()
    ids = [rule_id for rule_id, _, _ in rows]
    assert ids == sorted(ids)
    assert tuple(ids) == ALL_RULE_IDS
    for rule_id, title, rationale in rows:
        assert title and rationale, rule_id
    assert len(HOTPATH_RULES) == len(ALL_RULE_IDS)


def test_docs_cover_every_hotpath_rule():
    docs = (REPO_ROOT / "docs" / "linting.md").read_text(encoding="utf-8")
    for rule_id, title, _ in hotpath_catalogue():
        assert rule_id in docs, f"{rule_id} missing from docs/linting.md"
        assert title in docs, f"title of {rule_id} missing from docs/linting.md"
    assert "allocation audit" in docs
    perf = (REPO_ROOT / "docs" / "performance.md").read_text(encoding="utf-8")
    assert "hot-path contract" in perf
    assert "RPR801" in perf


# ----------------------------------------------------------------------
# The real tree and the repro check integration
# ----------------------------------------------------------------------
def test_real_source_tree_is_hotpath_clean():
    report = analyze_paths([str(SRC / "repro")], root=REPO_ROOT)
    assert report.errors == []
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )


def test_analyzer_wall_time_budget():
    import time

    start = time.perf_counter()
    analyze_paths([str(SRC / "repro")], root=REPO_ROOT)
    assert time.perf_counter() - start < 10.0


def test_check_json_payload_reports_hotpath_timing():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", "--no-external",
         "--no-contract", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    [hot] = [t for t in payload["tools"] if t["name"] == "repro-hotpath"]
    assert hot["status"] == "passed"
    assert hot["data"]["elapsed_s"] < 10.0
    assert hot["data"]["modules"] > 50


def test_check_flags_baselines_and_exports_a_seeded_allocation(tmp_path):
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "churn.py").write_text(
        "import numpy as np\n"
        "class LeakyEngine:\n"
        "    def step(self):\n"
        "        tmp = np.zeros(8)\n"
        "        tmp += 1\n"
        "        return None\n",
        encoding="utf-8",
    )
    sarif_path = tmp_path / "out.sarif"

    def check(*extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", "check", str(bad),
             "--no-external", "--no-contract", "--format", "json", *extra],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    proc = check("--sarif", str(sarif_path))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    [hot] = [t for t in payload["tools"] if t["name"] == "repro-hotpath"]
    [violation] = hot["violations"]
    assert violation["rule"] == "RPR801"
    sarif = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert [r["ruleId"] for r in sarif["runs"][0]["results"]] == ["RPR801"]

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps({
            "version": 1,
            "suppressions": [{
                "rule": violation["rule"],
                "path": violation["path"],
                "symbol": violation["symbol"],
            }],
        }),
        encoding="utf-8",
    )
    proc = check("--baseline", str(baseline_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    [hot] = [t for t in payload["tools"] if t["name"] == "repro-hotpath"]
    assert hot["violations"] == []
    assert hot["data"]["suppressed_by_baseline"] == 1


# ----------------------------------------------------------------------
# The runtime allocation audit
# ----------------------------------------------------------------------
def test_allocation_audit_tiny_combo_is_steady():
    """Unconditional smoke: one combo must sit under its threshold."""
    results = run_allocation_audit(
        warmup=6, rounds=12, combos=["single×sparse_int32"]
    )
    assert results, "combo filter matched nothing"
    for result in results:
        assert result.threshold == DEFAULT_THRESHOLD_BYTES
        assert result.ok, result.format()


def test_allocation_audit_catches_a_seeded_leak(monkeypatch):
    """A deliberately leaky per-round step must blow the threshold."""
    from repro.devtools.hotpath import audit as audit_module

    import numpy as np

    stash = []

    def leaky_step():
        stash.append(np.zeros(4096, dtype=np.float64))

    measured = audit_module._measure_retained(leaky_step, warmup=2, rounds=8)
    assert measured > DEFAULT_THRESHOLD_BYTES


@pytest.mark.skipif(
    not _SANITIZE, reason="full audit grid runs under REPRO_SANITIZE=1"
)
def test_allocation_audit_full_grid_is_steady():
    summary = allocation_summary()
    assert summary["ok"] is True
    assert len(summary["bytes_per_round"]) == 19
    for combo, measured in summary["bytes_per_round"].items():
        assert measured <= summary["threshold_bytes"][combo], combo


# ----------------------------------------------------------------------
# The bench-harness envelope
# ----------------------------------------------------------------------
def test_bench_envelope_embeds_the_allocation_audit(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location(
        "_bench_harness", REPO_ROOT / "benchmarks" / "_harness.py"
    )
    harness = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(harness)
    monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
    path = harness.save_bench_rows(
        "hotpath_audit_test", [{"n": 8, "rounds": 3}]
    )
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    allocation = payload["envelope"]["parameters"]["allocation"]
    assert allocation["ok"] is True
    assert len(allocation["bytes_per_round"]) == 19
    opt_out = harness.save_bench_rows(
        "hotpath_audit_test2", [{"n": 8}], audit_allocations=False
    )
    payload = json.loads(Path(opt_out).read_text(encoding="utf-8"))
    assert "allocation" not in payload["envelope"]["parameters"]
