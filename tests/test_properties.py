"""Unit tests for structural graph properties."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    average_degree,
    bfs_distances,
    clustering_coefficient,
    connected_components,
    deg2,
    deg2_all,
    degree_histogram,
    diameter,
    is_connected,
    triangle_count,
)


class TestDeg2:
    def test_star_center_and_leaves(self, star6):
        # Hub sees its own degree 5; leaves see the hub's 5.
        assert deg2(star6, 0) == 5
        assert all(deg2(star6, v) == 5 for v in range(1, 6))

    def test_path_interior(self):
        g = gen.path(5)
        assert deg2(g, 0) == 2  # endpoint sees its degree-2 neighbor
        assert deg2(g, 2) == 2

    def test_isolated_vertex(self):
        g = Graph(2)
        assert deg2(g, 0) == 0

    def test_deg2_all_matches_pointwise(self, petersen):
        values = deg2_all(petersen)
        assert values == tuple(deg2(petersen, v) for v in petersen.vertices())

    def test_deg2_dominates_degree(self, er_graph):
        values = deg2_all(er_graph)
        assert all(
            values[v] >= er_graph.degree(v) for v in er_graph.vertices()
        )


class TestTraversal:
    def test_bfs_distances_path(self):
        g = gen.path(5)
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]

    def test_bfs_unreachable(self, isolated_plus_edge):
        dist = bfs_distances(isolated_plus_edge, 0)
        assert dist == [0, 1, None]

    def test_components(self, isolated_plus_edge):
        assert connected_components(isolated_plus_edge) == [[0, 1], [2]]

    def test_components_cover_all_vertices(self, er_graph):
        comps = connected_components(er_graph)
        seen = sorted(v for c in comps for v in c)
        assert seen == list(er_graph.vertices())

    def test_is_connected(self, petersen, isolated_plus_edge):
        assert is_connected(petersen)
        assert not is_connected(isolated_plus_edge)
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))

    def test_diameter(self):
        assert diameter(gen.path(6)) == 5
        assert diameter(gen.cycle(8)) == 4
        assert diameter(gen.complete(5)) == 1

    def test_diameter_disconnected(self, isolated_plus_edge):
        assert diameter(isolated_plus_edge) is None

    def test_petersen_diameter(self, petersen):
        assert diameter(petersen) == 2


class TestAggregates:
    def test_average_degree(self, triangle):
        assert average_degree(triangle) == 2.0
        assert average_degree(Graph(0)) == 0.0

    def test_degree_histogram(self, star6):
        assert degree_histogram(star6) == {5: 1, 1: 5}

    def test_triangle_count(self, triangle):
        assert triangle_count(triangle) == 1

    def test_triangle_count_k4(self):
        assert triangle_count(gen.complete(4)) == 4

    def test_triangle_free(self):
        assert triangle_count(gen.complete_bipartite(3, 3)) == 0
        assert triangle_count(gen.cycle(5)) == 0

    def test_clustering_complete(self):
        assert clustering_coefficient(gen.complete(5)) == pytest.approx(1.0)

    def test_clustering_triangle_free(self):
        assert clustering_coefficient(gen.cycle(6)) == 0.0

    def test_clustering_empty(self):
        assert clustering_coefficient(Graph(3)) == 0.0
