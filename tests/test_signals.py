"""Unit tests for the signal primitives."""

import pytest

from repro.beeping.signals import (
    BEEP1,
    CHANNEL_MAIN,
    CHANNEL_MIS,
    SILENT1,
    SILENT2,
    merge_heard,
    silence,
    single,
)


class TestConstants:
    def test_widths(self):
        assert len(SILENT1) == 1 and len(BEEP1) == 1
        assert len(SILENT2) == 2

    def test_channel_indices_distinct(self):
        assert CHANNEL_MAIN != CHANNEL_MIS


class TestBuilders:
    def test_silence(self):
        assert silence(1) == (False,)
        assert silence(3) == (False, False, False)

    def test_single(self):
        assert single(0, 2) == (True, False)
        assert single(1, 2) == (False, True)

    def test_single_out_of_range(self):
        with pytest.raises(ValueError):
            single(2, 2)
        with pytest.raises(ValueError):
            single(-1, 1)


class TestMerge:
    def test_or_semantics(self):
        merged = merge_heard([(True, False), (False, False), (False, True)])
        assert merged == (True, True)

    def test_single_pattern(self):
        assert merge_heard([(False, True)]) == (False, True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_heard([])
