"""RPR802 (flag): a dtype-churning .astype copy at round frequency."""
import numpy as np


class CastEngine:
    def __init__(self, n):
        self.levels = np.zeros(n, dtype=np.int64)

    def step(self):
        exponent = self.levels.astype(np.float64)  # converted copy per round
        return float(exponent.sum())
