"""RPR621 (flag): an engine-shared adjacency is mutated through a helper."""


def clear_diagonal(matrix):
    matrix.setdiag(0)
    return matrix


def scrub_engine(engine):
    # engine.adjacency is aliased by collectors and sibling replicas.
    clear_diagonal(engine.adjacency)
    return engine
