"""RPR622 (flag): a lambda handed to a process pool fails only at runtime."""
from concurrent.futures import ProcessPoolExecutor


def sweep(configs):
    futures = []
    with ProcessPoolExecutor() as pool:
        for config in configs:
            futures.append(pool.submit(lambda c: c * 2, config))
    return [f.result() for f in futures]
