"""RPR805 (clean): per-round observability through a collector sink."""
import logging

logger = logging.getLogger("df805")


class QuietEngine:
    def __init__(self, sink):
        self.sink = sink
        logger.info("engine constructed")  # setup-time logging is fine

    def step(self):
        self.sink.observe(1)
        return None
