"""RPR705 (flag): service topology and state mutated around the op loop."""


def grow_ring(service, count):
    for _ in range(count):
        service.topology.add_node()  # bypasses the op surface.
    return service


def wrench(target):
    # Hop 2: the helper receives the service and pokes its topology.
    target.topology.remove_node(0)


def churn(service):
    wrench(service)
    return service


def reset(service):
    service._levels = None  # private engine state written from outside.
    return service
