"""RPR601 (clean): the same two-hop flow, but through the blessed helper."""
from repro.devtools.seeding import resolve_rng


def simulate(graph, seed=None):
    return graph, seed


def middle(graph, stream):
    return simulate(graph, seed=stream)


def top(graph, seed):
    rng = resolve_rng(seed)
    return middle(graph, rng)
