"""RPR602 (clean): one coercion, independent children via the seed tree."""
from repro.devtools.seeding import derive_seed_sequence, rng_from_sequence


def independent_streams(seed, count):
    root = derive_seed_sequence(seed)
    return [rng_from_sequence(child) for child in root.spawn(count)]


def branch_local(seed, fast):
    # One coercion per control-flow path is fine.
    if fast:
        return derive_seed_sequence(seed)
    return derive_seed_sequence(seed)
