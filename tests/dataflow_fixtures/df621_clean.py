"""RPR621 (clean): copy the shared matrix before mutating."""


def clear_diagonal(matrix):
    matrix.setdiag(0)
    return matrix


def scrub_engine(engine):
    private = engine.adjacency.copy()
    clear_diagonal(private)
    return private
