"""RPR631 (flag): adjacency rebuilt by hand instead of via the cache."""

from repro.graphs.io import to_sparse_adjacency


def local_adjacency(graph):
    # Rebuilds a CSR the structure cache already memoizes for this graph.
    return to_sparse_adjacency(graph)
