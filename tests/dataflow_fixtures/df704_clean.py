"""RPR704 (clean): context-managed pool, merge by index, guarded close."""
from concurrent.futures import ProcessPoolExecutor, as_completed


def measure(value):
    return value * 2


def dispatch(pool, value):
    return pool.submit(measure, value)


def run(values):
    samples = [None] * len(values)
    with ProcessPoolExecutor(2) as pool:
        handles = {dispatch(pool, v): i for i, v in enumerate(values)}
        for handle in as_completed(handles):
            samples[handles[handle]] = handle.result()
    return samples


def guarded(values, jobs):
    pool = None
    if jobs > 1:
        pool = ProcessPoolExecutor(jobs)
    try:
        if pool is not None:
            return dispatch(pool, values[0]).result()
        return measure(values[0])
    finally:
        if pool is not None:
            pool.shutdown()
