"""RPR641 (clean): mutations flow through the two blessed funnels."""

from repro.core.kernels import update_structure


def add_edge(topo, u, v):
    # The op surface validates the cap and returns the delta.
    return topo.add_edge(u, v)


def tombstone(topo, v):
    return topo.remove_node(v)


def patch(structure, delta):
    # Reads of the public forms are fine; patching goes through kernels.
    _ = structure.csr
    return update_structure(structure, delta)
