"""RPR612 (flag): stores into a preallocated int16 buffer silently truncate."""
# repro: allow-file[RPR302]
import numpy as np


def fill_histogram(counts):
    out = np.zeros(16, dtype=np.int16)
    for index, value in enumerate(counts):
        out[index] = value * 1000
    return out
