"""RPR705 (clean): mutations flow through the service op surface."""
from repro.serve.ops import Op


def churn(service, u, v):
    service.apply([Op("ADD_EDGE", u=u, v=v)])
    return service.run(rounds=4)


def standalone(topology):
    # A MutableTopology the caller owns (no service attached) is fair game.
    topology.add_node()
    return topology
