"""RPR612 (clean): the same stores into a wide buffer."""
import numpy as np


def fill_histogram(counts):
    out = np.zeros(16, dtype=np.int64)
    for index, value in enumerate(counts):
        out[index] = value * 1000
    return out
