"""RPR701 (clean): all-paths close+unlink, ordered after pool shutdown."""
from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory

from df701_lib import open_scratch


def scoped(task, num_bytes):
    seg = SharedMemory(create=True, size=num_bytes)
    try:
        with ProcessPoolExecutor(2) as pool:
            handle = pool.submit(task, seg.name)
            result = handle.result()
    finally:
        # The pool has shut down: no worker still maps the segment.
        seg.close()
        seg.unlink()
    return result


def factory_discharged(num_bytes):
    scratch = open_scratch(num_bytes)
    try:
        return scratch.size
    finally:
        scratch.close()
        scratch.unlink()
