"""Helper module for the RPR801 interprocedural fixtures.

``fresh_levels`` only ever returns a freshly allocated array, so a hot
caller two modules away that discards its result is charged at the
call site (returns-fresh summaries cross module boundaries).
"""
import numpy as np


def fresh_levels(n):
    return np.zeros(n, dtype=np.int64)
