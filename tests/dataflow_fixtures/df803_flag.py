"""RPR803 (flag): Python-level iteration over a freshly built array."""
import numpy as np


class LoopEngine:
    def __init__(self, n):
        self.n = n

    def step(self):
        beeps = np.zeros(self.n, dtype=bool)
        total = 0
        for flag in beeps:  # per-element interpreter dispatch every round
            total += int(flag)
        return beeps
