"""RPR631 (clean): adjacency fetched through the shared structure cache."""

from repro.core.kernels import structure_for


def local_adjacency(graph):
    return structure_for(graph).csr


def packed_rows(graph):
    return structure_for(graph).packed
