"""RPR801 (flag): per-round allocations that die inside the hot region."""
import numpy as np

from df801_lib import fresh_levels


def _staging(n):
    # Hop 2: a pass-through that still only returns fresh arrays.
    return fresh_levels(n)


class ToyEngine:
    def __init__(self, n):
        self.n = n
        self.levels = np.zeros(n, dtype=np.int64)

    def step(self):
        counts = np.zeros(self.n, dtype=np.int64)  # direct: dies here
        counts += self.levels
        self.levels[counts > 1] = 0
        staged = _staging(self.n)  # two hops to the allocator: dies here
        staged += 1
        return None
