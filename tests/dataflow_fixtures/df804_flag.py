"""RPR804 (flag): scratch buffers rebound to attributes on every hot call."""
import numpy as np


class ScratchEngine:
    def __init__(self, n):
        self.n = n
        self.levels = np.zeros(n, dtype=np.int64)

    def step(self):
        self._mask = np.zeros(self.n, dtype=bool)  # reallocated per round
        self._lag = np.where(self.levels > 0, 0, 1)  # ditto, via np.where
        return None
