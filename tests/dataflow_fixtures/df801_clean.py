"""RPR801 (clean): the blessed preallocated-scratch shapes."""
import numpy as np

from df801_lib import fresh_levels


class ToyCleanEngine:
    def __init__(self, n):
        self.n = n
        self.levels = np.zeros(n, dtype=np.int64)
        self._counts = np.empty(n, dtype=np.int64)  # bound once: blessed

    def step(self):
        counts = self._counts
        np.copyto(counts, self.levels)
        counts += 1
        beeps = counts > 0
        return beeps  # the caller owns this result

    def rebind(self, n):
        # Setup escape: reallocating on a topology change is the contract.
        self.n = n
        self.levels = fresh_levels(n)
        self._counts = np.empty(n, dtype=np.int64)

    def snapshot(self):  # repro: cold
        return np.zeros(self.n, dtype=np.int64)
