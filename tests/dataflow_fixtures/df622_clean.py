"""RPR622 (clean): executor payloads are module-level functions."""
from concurrent.futures import ProcessPoolExecutor


def double(config):
    return config * 2


def sweep(configs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(double, config) for config in configs]
    return [f.result() for f in futures]
