"""RPR804 (clean): attributes bound at construction, updated in place."""
import numpy as np


class ScratchCleanEngine:
    def __init__(self, n):
        self.levels = np.zeros(n, dtype=np.int64)
        self._mask = np.zeros(n, dtype=bool)

    def step(self):
        np.greater(self.levels, 0, out=self._mask)
        return None

    def rebind(self, n):
        # Topology changed: reallocating here is exactly the contract.
        self._mask = np.zeros(n, dtype=bool)
