"""RPR641 (flag): topology internals mutated outside MutableTopology."""


def sneak_edge(topo, u, v):
    # Bypasses the degree cap and emits no TopologyDelta: the engine
    # and the derived structure never hear about this edge.
    topo._adj[u].add(v)
