"""RPR701 (flag): leaked segments and an unlink under a live pool."""
from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory

from df701_lib import open_scratch


def leak_direct(num_bytes):
    seg = SharedMemory(create=True, size=num_bytes)
    return seg.name  # never closed: leaks /dev/shm bytes.


def leak_from_factory(num_bytes):
    # Hop 2: the factory's fresh segment is this frame's obligation.
    scratch = open_scratch(num_bytes)
    scratch.close()  # close without unlink still leaks the backing file.
    return 0


def unlink_under_live_pool(task, num_bytes):
    seg = SharedMemory(create=True, size=num_bytes)
    with ProcessPoolExecutor(2) as pool:
        handle = pool.submit(task, seg.name)
        seg.close()
        seg.unlink()  # workers may still hold the mapping.
        return handle.result()
