"""RPR703 (clean): randomness is passed explicitly as a task argument."""
from concurrent.futures import ProcessPoolExecutor

import numpy as np


def draw(child_seed, count):
    rng = np.random.default_rng(child_seed)
    return rng.random(count)


def run(root_seed, count):
    children = np.random.SeedSequence(root_seed).spawn(2)
    with ProcessPoolExecutor(2) as pool:
        handles = [pool.submit(draw, child, count) for child in children]
        return [handle.result() for handle in handles]
