"""RPR803 (clean): the same reduction as an array expression."""
import numpy as np


class LoopCleanEngine:
    def __init__(self, n):
        self.n = n

    def step(self):
        beeps = np.zeros(self.n, dtype=bool)
        total = int(np.count_nonzero(beeps))
        return beeps, total
