"""RPR702 (clean): copy the attached form before writing."""
from repro.core.kernels.shm import attach_structure


def saturate(block):
    block += 1
    return block


def run(manifest):
    private = attach_structure(manifest).dense.copy()
    return saturate(private)
