"""RPR611 (flag): the int8 buffer from df611_lib reaches a matvec two hops on."""
from df611_lib import make_levels


def neighbor_counts(adjacency, levels):
    # Hop 2: the accumulation; int8 counts wrap at degree >= 128.
    return adjacency.dot(levels)


def run(adjacency, num_vertices):
    levels = make_levels(num_vertices)  # Hop 1: cross-module producer.
    return neighbor_counts(adjacency, levels)
