"""RPR805 (flag): print/logging from inside the hot region."""
import logging

logger = logging.getLogger("df805")


class ChattyEngine:
    def step(self):
        print("round progressed")  # stdout write every round
        logger.info("round progressed")  # formatting + handler per round
        return None
