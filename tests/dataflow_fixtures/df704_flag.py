"""RPR704 (flag): leaked pool, submit-after-close, unordered merge."""
from concurrent.futures import ProcessPoolExecutor, as_completed


def measure(value):
    return value * 2


def dispatch(pool, value):
    return pool.submit(measure, value)


def leak_on_error_path(values, strict):
    pool = ProcessPoolExecutor(2)
    if strict:
        return None  # early return strands the worker processes.
    handles = [pool.submit(measure, v) for v in values]
    results = [h.result() for h in handles]
    pool.shutdown()
    return results


def reuse_after_shutdown(values):
    pool = ProcessPoolExecutor(2)
    warm = dispatch(pool, values[0]).result()
    pool.shutdown()
    late = dispatch(pool, values[1])  # Hop 2: the helper submits.
    return warm, late


def unordered_merge(values):
    with ProcessPoolExecutor(2) as pool:
        handles = [pool.submit(measure, v) for v in values]
        samples = []
        for handle in as_completed(handles):
            samples.append(handle.result())  # order = OS scheduling.
        return samples
