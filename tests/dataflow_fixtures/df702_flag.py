"""RPR702 (flag): in-place writes reach an attached view, two hops deep."""
from repro.core.kernels.shm import attach_structure


def saturate(block):
    # Hop 2: the in-place mutation, far from the attach call.
    block += 1
    return block


def rescale(block):
    return saturate(block)


def scrub(manifest):
    levels = attach_structure(manifest).dense
    levels[0] = 0  # direct subscript store into the shared mapping.
    return levels


def run(manifest):
    structure = attach_structure(manifest)
    return rescale(structure.csr)
