"""RPR802 (clean): cast-on-store into a scratch array of the target dtype."""
import numpy as np


class CastCleanEngine:
    def __init__(self, n):
        self.levels = np.zeros(n, dtype=np.int64)
        self._exponent = np.empty(n, dtype=np.float64)

    def step(self):
        np.copyto(self._exponent, self.levels)  # dtype conversion in place
        return float(self._exponent.sum())
