"""Producer half of the two-hop RPR611 fixture (the PR-1 int8 buffer).

The narrow dtype is deliberate — this file reintroduces the original
PR-1 bug, split across a module boundary so only the whole-program
analyzer can connect the allocation to the matvec.
"""
# repro: allow-file[RPR302]
import numpy as np


def make_levels(num_vertices):
    return np.ones(num_vertices, dtype=np.int8)
