"""RPR703 (flag): workers capture the fork-inherited module RNG."""
from concurrent.futures import ProcessPoolExecutor

import numpy as np

_RNG = np.random.default_rng(1234)


def draw(count):
    return _RNG.random(count)


def sample_noise(count):
    # Hop 2: still the same fork-cloned generator state.
    return draw(count)


def run(count):
    with ProcessPoolExecutor(2) as pool:
        direct = pool.submit(draw, count)
        nested = pool.submit(sample_noise, count)
        return direct.result() + nested.result()
