"""Producer half of the two-hop RPR701 fixture: a segment factory.

Returning the freshly created segment hands the close+unlink obligation
to the caller — the factory itself is clean; ``df701_flag.leak_from_
factory`` discharges only half of it.
"""
from multiprocessing.shared_memory import SharedMemory


def open_scratch(num_bytes):
    return SharedMemory(create=True, size=num_bytes)
