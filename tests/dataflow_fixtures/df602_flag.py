"""RPR602 (flag): the same scalar seed coerced twice on one path."""
from repro.devtools.seeding import resolve_rng


def correlated_streams(seed):
    first = resolve_rng(seed)
    second = resolve_rng(seed)
    return first, second
