"""RPR601 (flag): a raw generator crosses two call hops into an entry point."""
import numpy as np


def simulate(graph, seed=None):
    return graph, seed


def middle(graph, stream):
    # Hop 2: forwards the stream into the seed-accepting entry point.
    return simulate(graph, seed=stream)


def top(graph):
    # Hop 1: a raw generator bypassing repro.devtools.seeding.
    rng = np.random.default_rng(7)
    return middle(graph, rng)
