"""RPR611 (clean): the same flow with a wide cast before the accumulation."""
import numpy as np

from df611_lib import make_levels


def neighbor_counts(adjacency, levels):
    return adjacency.dot(levels)


def run(adjacency, num_vertices):
    levels = make_levels(num_vertices).astype(np.int64)
    return neighbor_counts(adjacency, levels)
