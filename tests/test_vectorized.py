"""Unit tests for the vectorized engines."""

import numpy as np
import pytest

from repro.core.knowledge import max_degree_policy, uniform_policy
from repro.core.vectorized import (
    SingleChannelEngine,
    TwoChannelEngine,
    simulate_single,
    simulate_two_channel,
)
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis


class TestSingleChannelEngine:
    def test_initial_levels_are_one(self, er_graph):
        engine = SingleChannelEngine(er_graph, uniform_policy(er_graph, 5))
        assert (engine.levels == 1).all()

    def test_policy_size_validated(self, er_graph, path4):
        with pytest.raises(ValueError):
            SingleChannelEngine(er_graph, uniform_policy(path4, 5))

    def test_set_levels_validated(self, path4):
        engine = SingleChannelEngine(path4, uniform_policy(path4, 3))
        with pytest.raises(ValueError):
            engine.set_levels(np.array([1, 2, 3]))  # wrong shape
        with pytest.raises(ValueError):
            engine.set_levels(np.array([4, 0, 0, 0]))  # out of range
        engine.set_levels(np.array([-3, 3, 0, 1]))
        assert list(engine.levels) == [-3, 3, 0, 1]

    def test_beep_probabilities_match_figure1(self, path4):
        engine = SingleChannelEngine(path4, uniform_policy(path4, 4))
        engine.set_levels(np.array([-4, 0, 2, 4]))
        assert list(engine.beep_probabilities()) == [1.0, 1.0, 0.25, 0.0]

    def test_randomize_levels_in_range(self, er_graph):
        policy = uniform_policy(er_graph, 6)
        engine = SingleChannelEngine(er_graph, policy, seed=0)
        engine.randomize_levels()
        assert (engine.levels >= -6).all() and (engine.levels <= 6).all()
        # With 80 vertices over 13 values, we should see real spread.
        assert len(set(engine.levels.tolist())) > 3

    def test_step_counts_rounds(self, path4):
        engine = SingleChannelEngine(path4, uniform_policy(path4, 3), seed=0)
        engine.step()
        engine.step()
        assert engine.round_index == 2

    def test_masks_on_legal_configuration(self, path4):
        engine = SingleChannelEngine(path4, uniform_policy(path4, 3))
        engine.set_levels(np.array([-3, 3, -3, 3]))
        assert list(engine.mis_mask()) == [True, False, True, False]
        assert engine.stable_mask().all()
        assert engine.is_legal()
        assert engine.mis_vertices() == {0, 2}

    def test_not_legal_when_level_off_by_one(self, path4):
        engine = SingleChannelEngine(path4, uniform_policy(path4, 3))
        engine.set_levels(np.array([-3, 3, -3, 2]))
        assert not engine.is_legal()

    def test_isolated_vertices_handled(self):
        g = Graph(3)  # no edges at all
        result = simulate_single(g, uniform_policy(g, 2), seed=0, max_rounds=100)
        assert result.stabilized
        assert result.mis == {0, 1, 2}


class TestTwoChannelEngine:
    def test_set_levels_validated(self, path4):
        engine = TwoChannelEngine(path4, uniform_policy(path4, 3))
        with pytest.raises(ValueError):
            engine.set_levels(np.array([-1, 0, 0, 0]))
        engine.set_levels(np.array([0, 3, 0, 3]))
        assert engine.is_legal()

    def test_adjacent_zeros_resolve(self):
        g = Graph(2, [(0, 1)])
        engine = TwoChannelEngine(g, uniform_policy(g, 3), seed=0)
        engine.set_levels(np.array([0, 0]))
        engine.step()
        assert list(engine.levels) == [3, 3]

    def test_simulation_reaches_valid_mis(self, er_graph):
        result = simulate_two_channel(
            er_graph, uniform_policy(er_graph, 6), seed=1, max_rounds=5000
        )
        assert result.stabilized
        assert check_mis(er_graph, result.mis) is None


class TestConstantStateEngine:
    def test_membership_shape_validated(self, path4):
        from repro.core.vectorized import ConstantStateEngine

        engine = ConstantStateEngine(path4)
        with pytest.raises(ValueError):
            engine.set_membership(np.array([True, False]))

    def test_legality_is_mis_predicate(self, path4):
        from repro.core.vectorized import ConstantStateEngine

        engine = ConstantStateEngine(path4)
        engine.set_membership(np.array([True, False, True, False]))
        assert engine.is_legal()
        engine.set_membership(np.array([True, True, False, False]))
        assert not engine.is_legal()
        engine.set_membership(np.array([True, False, False, False]))
        assert not engine.is_legal()

    def test_legal_configuration_absorbing(self, er_graph):
        from repro.core.vectorized import ConstantStateEngine
        from repro.graphs.mis import greedy_mis

        engine = ConstantStateEngine(er_graph, seed=1)
        mis = greedy_mis(er_graph)
        engine.set_membership(
            np.array([v in mis for v in er_graph.vertices()])
        )
        before = engine.in_mis.copy()
        for _ in range(40):
            engine.step()
        assert (engine.in_mis == before).all()

    def test_simulation_produces_valid_mis(self):
        from repro.core.vectorized import simulate_constant_state

        graph = gen.cycle(40)
        result = simulate_constant_state(graph, seed=2, arbitrary_start=True)
        assert result.stabilized
        assert check_mis(graph, result.mis) is None

    def test_budget_exhaustion_reported(self, er_graph):
        from repro.core.vectorized import simulate_constant_state

        result = simulate_constant_state(er_graph, seed=3, max_rounds=0)
        # Fresh start (all IN) on a graph with edges is not an MIS.
        assert not result.stabilized


class TestDriveLoop:
    def test_max_rounds_zero_reports_current_state(self, path4):
        policy = uniform_policy(path4, 3)
        result = simulate_single(path4, policy, seed=0, max_rounds=0)
        assert not result.stabilized
        assert result.rounds == 0

    def test_already_legal_start_is_zero_rounds(self, path4):
        policy = uniform_policy(path4, 3)
        result = simulate_single(
            path4,
            policy,
            seed=0,
            initial_levels=np.array([-3, 3, -3, 3]),
            max_rounds=100,
        )
        assert result.stabilized
        assert result.rounds == 0
        assert result.mis == {0, 2}

    def test_check_every_overreports_boundedly(self, er_graph):
        policy = max_degree_policy(er_graph, c1=4)
        exact = simulate_single(er_graph, policy, seed=3, max_rounds=10_000)
        sparse = simulate_single(
            er_graph, policy, seed=3, max_rounds=10_000, check_every=8
        )
        assert sparse.stabilized
        assert exact.rounds <= sparse.rounds < exact.rounds + 8
        # Legality is closed, so the MIS is the same.
        assert sparse.mis == exact.mis

    def test_invalid_check_every(self, path4):
        with pytest.raises(ValueError):
            simulate_single(path4, uniform_policy(path4, 3), check_every=0)

    def test_record_series_lengths(self, er_graph):
        policy = max_degree_policy(er_graph, c1=4)
        result = simulate_single(
            er_graph, policy, seed=5, max_rounds=10_000, record_series=True
        )
        assert result.stabilized
        assert len(result.beep_series) == result.rounds
        assert len(result.stable_series) == result.rounds
        # S_t is monotone nondecreasing (paper, Section 3).
        assert result.stable_series == sorted(result.stable_series)

    def test_record_series_independent_of_check_cadence(self, er_graph):
        """Recording must not tighten the legality-check cadence.

        Historically ``record_series=True`` forced a legality check every
        round, silently overriding ``check_every``; now the two knobs are
        orthogonal: same ``rounds`` either way, and the series cover every
        executed round.
        """
        policy = max_degree_policy(er_graph, c1=4)
        plain = simulate_single(
            er_graph, policy, seed=3, max_rounds=10_000, check_every=8
        )
        recorded = simulate_single(
            er_graph, policy, seed=3, max_rounds=10_000, check_every=8,
            record_series=True,
        )
        assert recorded.rounds == plain.rounds
        assert recorded.rounds % 8 == 0
        assert len(recorded.beep_series) == recorded.rounds
        assert len(recorded.stable_series) == recorded.rounds

    def test_seed_determinism(self, er_graph):
        policy = max_degree_policy(er_graph, c1=4)
        a = simulate_single(er_graph, policy, seed=9, arbitrary_start=True)
        b = simulate_single(er_graph, policy, seed=9, arbitrary_start=True)
        assert a.rounds == b.rounds
        assert a.mis == b.mis

    def test_arbitrary_start_stabilizes(self, er_graph):
        policy = max_degree_policy(er_graph, c1=4)
        for seed in range(5):
            result = simulate_single(
                er_graph, policy, seed=seed, arbitrary_start=True, max_rounds=10_000
            )
            assert result.stabilized
            assert check_mis(er_graph, result.mis) is None
