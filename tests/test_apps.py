"""Tests for the downstream applications (coloring, matching, clustering)."""

import pytest

from repro.apps.clustering import elect_clusters
from repro.apps.coloring import iterated_mis_coloring, validate_coloring
from repro.apps.matching import maximal_matching, validate_matching
from repro.graphs import generators as gen
from repro.graphs.graph import Graph

from conftest import small_graph_zoo


class TestColoring:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_proper_coloring_at_most_delta_plus_one(self, name, graph):
        result = iterated_mis_coloring(graph, seed=1, c1=4)
        assert validate_coloring(graph, result.colors) is None, name
        assert result.num_colors <= graph.max_degree() + 1, name
        assert len(result.colors) == graph.num_vertices

    def test_color_classes_partition(self, er_graph):
        result = iterated_mis_coloring(er_graph, seed=2, c1=4)
        classes = result.color_classes()
        flat = sorted(v for cls in classes for v in cls)
        assert flat == list(er_graph.vertices())
        # First class is the first MIS → independent.
        from repro.graphs.mis import is_independent_set

        for cls in classes:
            assert is_independent_set(er_graph, cls)

    def test_bipartite_uses_few_colors(self):
        g = gen.complete_bipartite(4, 5)
        result = iterated_mis_coloring(g, seed=3, c1=4)
        assert result.num_colors == 2

    def test_complete_graph_needs_n_colors(self):
        g = gen.complete(5)
        result = iterated_mis_coloring(g, seed=4, c1=4)
        assert result.num_colors == 5

    def test_empty_graph_one_color(self):
        result = iterated_mis_coloring(Graph(4), seed=5, c1=4)
        assert result.num_colors == 1
        assert result.phases == 1

    def test_null_graph(self):
        result = iterated_mis_coloring(Graph(0), seed=6, c1=4)
        assert result.num_colors == 0

    def test_seed_determinism(self, er_graph):
        a = iterated_mis_coloring(er_graph, seed=7, c1=4)
        b = iterated_mis_coloring(er_graph, seed=7, c1=4)
        assert a.colors == b.colors

    def test_validate_reports_conflict(self, triangle):
        assert validate_coloring(triangle, [0, 0, 1]) == (0, 1)
        assert validate_coloring(triangle, [0, 1, 2]) is None

    def test_rounds_accumulated(self, er_graph):
        result = iterated_mis_coloring(er_graph, seed=8, c1=4)
        assert result.total_rounds > 0
        assert result.phases >= 2


class TestMatching:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_maximal_matching_everywhere(self, name, graph):
        result = maximal_matching(graph, seed=1, c1=4)
        assert validate_matching(graph, result.matching) is None, name

    def test_edgeless_graph(self):
        result = maximal_matching(Graph(5), seed=2, c1=4)
        assert result.matching == ()
        assert result.rounds == 0

    def test_perfect_on_even_path(self):
        # P_2: single edge must be matched.
        result = maximal_matching(gen.path(2), seed=3, c1=4)
        assert result.matching == ((0, 1),)

    def test_star_matches_exactly_one_edge(self, star6):
        result = maximal_matching(star6, seed=4, c1=4)
        assert result.size == 1

    def test_matched_vertices(self, er_graph):
        result = maximal_matching(er_graph, seed=5, c1=4)
        assert len(result.matched_vertices()) == 2 * result.size

    def test_validator_catches_violations(self, path4):
        assert "not an edge" in validate_matching(path4, [(0, 2)])
        assert "reused" in validate_matching(path4, [(0, 1), (1, 2)])
        assert "not maximal" in validate_matching(path4, [(0, 1)])

    def test_matching_at_least_half_of_maximum_on_paths(self):
        # Any maximal matching is a 2-approximation of maximum.
        g = gen.path(20)
        result = maximal_matching(g, seed=6, c1=4)
        assert result.size >= 5  # maximum is 10


class TestClustering:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_every_vertex_assigned(self, name, graph):
        clustering = elect_clusters(graph, seed=1, c1=4)
        for v in graph.vertices():
            head = clustering.head_of[v]
            assert head in clustering.heads
            assert head == v or graph.has_edge(v, head)

    def test_heads_are_their_own_heads(self, er_graph):
        clustering = elect_clusters(er_graph, seed=2, c1=4)
        for head in clustering.heads:
            assert clustering.head_of[head] == head

    def test_cluster_sizes_sum_to_n(self, er_graph):
        clustering = elect_clusters(er_graph, seed=3, c1=4)
        assert sum(clustering.cluster_sizes().values()) == er_graph.num_vertices
        assert clustering.max_cluster_size() >= 1

    def test_members_listing(self, star6):
        clustering = elect_clusters(star6, seed=4, c1=4)
        if 0 in clustering.heads:
            assert clustering.members(0) == list(range(6))
        else:
            assert clustering.heads == frozenset(range(1, 6))

    def test_members_requires_head(self, er_graph):
        clustering = elect_clusters(er_graph, seed=5, c1=4)
        non_head = next(
            v for v in er_graph.vertices() if v not in clustering.heads
        )
        with pytest.raises(ValueError):
            clustering.members(non_head)

    def test_isolated_vertices_become_heads(self):
        g = Graph(3, [(0, 1)])
        clustering = elect_clusters(g, seed=6, c1=4)
        assert 2 in clustering.heads
