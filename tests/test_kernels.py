"""Hear kernels: registry, cache, shared memory, and cross-kernel identity.

The kernels package promises that every registered hear kernel is
*bit-identical* to the reference ``sparse_int32`` formula on any input,
so engines may switch kernels without perturbing a single trajectory.
This suite pins that promise across ≥ 8 graph families (including a
degree ≥ 256 hub — the PR-1 int8-overflow class), the auto-selection
heuristic, the content-keyed structure cache, and the shared-memory
export/attach roundtrip used by sweep workers.
"""

import numpy as np
import pytest

from repro.analysis.measurements import StabilizationRounds
from repro.analysis.sweep import SweepPool, run_sweep
from repro.core.engines.batched import simulate_batched
from repro.core.engines.constant_state import simulate_constant_state
from repro.core.engines.single import simulate_single
from repro.core.engines.two_channel import simulate_two_channel
from repro.core.kernels import (
    KERNEL_ALIASES,
    GraphStructure,
    attach_structure,
    available_kernels,
    clear_structure_cache,
    export_structures,
    make_kernel,
    resolve_kernel_name,
    seed_structure,
    structure_cache_info,
    structure_for,
)
from repro.core.knowledge import max_degree_policy
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.io import to_sparse_adjacency  # repro: allow-file[RPR631]

SEED = 2024

#: ≥ 8 graph families; ``star(300)`` has a degree-299 hub (the class the
#: PR-1 int8 overflow wrapped on) and ``complete(40)`` is fully dense.
FAMILIES = {
    "path": lambda: gen.path(40),
    "cycle": lambda: gen.cycle(33),
    "star_deg299": lambda: gen.star(300),
    "complete": lambda: gen.complete(40),
    "grid": lambda: gen.grid_2d(6, 7),
    "torus": lambda: gen.torus_2d(5, 6),
    "binary_tree": lambda: gen.binary_tree(5),
    "er": lambda: gen.erdos_renyi(64, 0.15, seed=SEED),
    "regular": lambda: gen.random_regular(30, 4, seed=SEED),
    "watts_strogatz": lambda: gen.watts_strogatz(36, 4, 0.2, seed=SEED),
}


@pytest.fixture(params=sorted(FAMILIES))
def family_graph(request):
    return request.param, FAMILIES[request.param]()


# ----------------------------------------------------------------------
# Registry + auto heuristic
# ----------------------------------------------------------------------
def test_registry_lists_all_three_kernels():
    assert available_kernels() == ("bitset", "dense_bool", "sparse_int32")


def test_aliases_resolve_to_registered_names():
    for alias, target in KERNEL_ALIASES.items():
        assert resolve_kernel_name(alias) == target
        assert target in available_kernels()


def test_unknown_kernel_name_raises():
    with pytest.raises(ValueError, match="unknown hear kernel"):
        resolve_kernel_name("blas")


def test_auto_heuristic_small_graphs_go_dense():
    assert resolve_kernel_name("auto", structure_for(gen.path(50))) == "dense_bool"


def test_auto_heuristic_dense_graphs_go_bitset():
    structure = structure_for(gen.complete(200))
    assert resolve_kernel_name("auto", structure) == "bitset"


def test_auto_heuristic_large_sparse_goes_sparse():
    structure = structure_for(gen.cycle(400))
    assert resolve_kernel_name("auto", structure) == "sparse_int32"


def test_auto_heuristic_batched_blocks_prefer_bitset():
    # Moderate density: sparse solo, bitset once a replica block amortizes
    # the per-round gather.
    structure = structure_for(gen.erdos_renyi(400, 0.01, seed=SEED))
    assert resolve_kernel_name("auto", structure, replicas=1) == "sparse_int32"
    assert resolve_kernel_name("auto", structure, replicas=16) == "bitset"


# ----------------------------------------------------------------------
# The structure cache
# ----------------------------------------------------------------------
def test_structure_cache_shares_by_content():
    clear_structure_cache()
    a = structure_for(gen.cycle(12))
    b = structure_for(gen.cycle(12))  # distinct Graph object, same content
    assert a is b
    info = structure_cache_info()
    assert info["misses"] == 1 and info["hits"] == 1


def test_structure_cache_capacity_is_bounded():
    clear_structure_cache()
    capacity = structure_cache_info()["capacity"]
    for n in range(2, capacity + 10):
        structure_for(gen.path(n))
    assert structure_cache_info()["size"] == capacity


def test_seed_structure_installs_prebuilt_entry():
    clear_structure_cache()
    graph = gen.cycle(9)
    prebuilt = GraphStructure(graph)
    prebuilt.csr  # force the build
    seed_structure(prebuilt)
    assert structure_for(Graph(9, graph.edges)) is prebuilt
    assert structure_cache_info()["hits"] == 1


def test_structure_csr_matches_to_sparse_adjacency(family_graph):
    _, graph = family_graph
    ours = structure_for(graph).csr
    reference = to_sparse_adjacency(graph)
    assert (ours != reference).nnz == 0
    assert ours.dtype == reference.dtype


def test_structure_transpose_is_shared():
    structure = structure_for(gen.erdos_renyi(30, 0.2, seed=SEED))
    assert structure.csr_t is structure.csr


def test_packed_roundtrips_through_unpack(family_graph):
    _, graph = family_graph
    structure = structure_for(graph)
    bits = np.unpackbits(
        structure.packed.view(np.uint8), axis=1, bitorder="little"
    )
    np.testing.assert_array_equal(
        bits[:, : structure.n].astype(bool), structure.dense
    )


# ----------------------------------------------------------------------
# Kernel-level bit-identity (every kernel vs the reference formula)
# ----------------------------------------------------------------------
def test_kernels_agree_on_random_masks(family_graph):
    _, graph = family_graph
    structure = structure_for(graph)
    adjacency = structure.csr
    rng = np.random.default_rng(SEED)
    kernels = [make_kernel(name, structure) for name in available_kernels()]
    for density in (0.0, 0.05, 0.5, 1.0):
        active = rng.random(structure.n) < density
        expected = adjacency.dot(active.astype(np.int32)) > 0
        for kernel in kernels:
            np.testing.assert_array_equal(
                kernel.hear(active), expected, err_msg=kernel.name
            )


def test_hear_rows_agree_and_are_c_contiguous(family_graph):
    _, graph = family_graph
    structure = structure_for(graph)
    adjacency = structure.csr
    rng = np.random.default_rng(SEED + 1)
    rows = rng.random((5, structure.n)) < 0.3
    expected = (adjacency.dot(rows.T.astype(np.int32)) > 0).T
    for name in available_kernels():
        kernel = make_kernel(name, structure)
        heard = kernel.hear_rows(rows)
        assert heard.flags.c_contiguous, name
        np.testing.assert_array_equal(heard, expected, err_msg=name)
        # The out= path (what the batched engine uses) must match too.
        out = np.empty_like(rows)
        result = kernel.hear_rows(rows, out=out)
        assert result is out and out.flags.c_contiguous, name
        np.testing.assert_array_equal(out, expected, err_msg=name)


# ----------------------------------------------------------------------
# Engine-level bit-identity: outcomes must not depend on the kernel
# ----------------------------------------------------------------------
def _outcome_tuple(result):
    return (
        result.stabilized,
        result.rounds,
        sorted(result.mis),
        result.final_levels.tolist(),
    )


def test_engine_outcomes_identical_across_kernels(family_graph):
    _, graph = family_graph
    policy = max_degree_policy(graph)
    runs = {
        "single": lambda k: simulate_single(
            graph, policy, seed=SEED, arbitrary_start=True, kernel=k
        ),
        "two_channel": lambda k: simulate_two_channel(
            graph, policy, seed=SEED, arbitrary_start=True, kernel=k
        ),
        "constant_state": lambda k: simulate_constant_state(
            graph, seed=SEED, kernel=k
        ),
    }
    for label, run in runs.items():
        reference = _outcome_tuple(run("sparse_int32"))
        for name in available_kernels():
            assert _outcome_tuple(run(name)) == reference, (label, name)


@pytest.mark.parametrize("algorithm", ["single", "two_channel"])
def test_batched_outcomes_identical_across_kernels(family_graph, algorithm):
    _, graph = family_graph
    policy = max_degree_policy(graph)

    def run(kernel):
        result = simulate_batched(
            graph,
            policy,
            replicas=4,
            seed=SEED,
            algorithm=algorithm,
            arbitrary_start=True,
            kernel=kernel,
        )
        return [_outcome_tuple(replica) for replica in result.results]

    reference = run("sparse_int32")
    for name in available_kernels():
        assert run(name) == reference, name


# ----------------------------------------------------------------------
# Shared-memory export / attach roundtrip
# ----------------------------------------------------------------------
def test_shared_memory_roundtrip_preserves_every_form():
    graph = gen.erdos_renyi(48, 0.2, seed=SEED)
    original = structure_for(graph)
    original.packed  # build before export
    shared = export_structures([graph, gen.erdos_renyi(48, 0.2, seed=SEED)])
    try:
        assert len(shared.manifests) == 1  # digest-deduplicated
        attached = attach_structure(shared.manifests[0])
        assert attached.graph == graph
        assert attached.digest == original.digest
        np.testing.assert_array_equal(attached.edge_array, original.edge_array)
        assert (attached.csr != original.csr).nnz == 0
        np.testing.assert_array_equal(attached.packed, original.packed)
        # Attached views are read-only: a stray in-place write must raise.
        assert not attached.packed.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            attached.edge_array[0, 0] = 99
        # Hearing through an attached structure matches the original.
        mask = np.zeros(48, dtype=bool)
        mask[::5] = True
        for name in available_kernels():
            np.testing.assert_array_equal(
                make_kernel(name, attached).hear(mask),
                make_kernel(name, original).hear(mask),
                err_msg=name,
            )
        attached._segments[0].close()
    finally:
        shared.close()


# ----------------------------------------------------------------------
# Sweep byte-identity with shared-memory workers on and off
# ----------------------------------------------------------------------
SWEEP_CONFIGS = [
    {"family": "er", "n": 24},
    {"family": "cycle", "n": 20},
    {"family": "er", "n": 24},  # duplicate topology → one shared segment
]


def _sweep_samples(**kwargs):
    result = run_sweep(
        SWEEP_CONFIGS,
        StabilizationRounds(variant="max_degree"),
        repetitions=3,
        master_seed=SEED,
        **kwargs,
    )
    return [list(cell.samples) for cell in result.cells]


@pytest.mark.parametrize("executor", ["process", "batched"])
def test_sweep_is_byte_identical_with_shared_memory_workers(executor):
    reference = _sweep_samples(executor="serial")
    plain = _sweep_samples(executor=executor, jobs=2)
    shared = _sweep_samples(executor=executor, jobs=2, shared_graphs=True)
    assert plain == reference
    assert shared == reference


def test_persistent_sweep_pool_reuses_workers_byte_identically():
    from repro.analysis.measurements import graph_for_config

    reference = _sweep_samples(executor="serial")
    graphs = [graph_for_config(config) for config in SWEEP_CONFIGS]
    with SweepPool(jobs=2, graphs=graphs) as pool:
        first = _sweep_samples(executor="process", pool=pool)
        second = _sweep_samples(executor="batched", pool=pool)
    assert first == reference
    assert second == reference


# ----------------------------------------------------------------------
# Segment lifecycle: idempotent close, finalize guard, audit registry
# ----------------------------------------------------------------------
def test_shared_set_close_is_idempotent_and_audited():
    from repro.core.kernels.shm import leaked_segments

    before = set(leaked_segments())
    shared = export_structures([gen.cycle(12)])
    exported = [n for n in leaked_segments() if n not in before]
    assert len(exported) == 1
    shared.close()
    assert [n for n in leaked_segments() if n not in before] == []
    shared.close()  # second close: no FileNotFoundError, no state change
    assert shared.manifests == []


def test_finalize_guard_unlinks_abandoned_segments():
    """A set dropped without close() must not strand its segments."""
    import gc

    from repro.core.kernels.shm import leaked_segments

    before = set(leaked_segments())
    shared = export_structures([gen.cycle(12)])  # repro: allow[RPR701]
    name = [n for n in leaked_segments() if n not in before][0]
    del shared
    gc.collect()
    assert name not in leaked_segments()
