"""Shared fixtures for the test suite.

Running pytest with ``REPRO_SANITIZE=1`` arms the sanitizer fixtures
below: every test then executes under
``np.errstate(over='raise', invalid='raise', divide='raise')`` so
silent numeric corruption (scalar integer overflow, NaN production)
fails the test that caused it, and a session-scoped leak audit asserts
that every shared-memory segment the suite exported was unlinked by the
end of the run.  See :mod:`repro.devtools.sanitize`.
"""

import os

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph

_SANITIZE = bool(os.environ.get("REPRO_SANITIZE"))


@pytest.fixture(autouse=_SANITIZE)
def _sanitize_numerics():
    """Trap silent numeric corruption (armed by ``REPRO_SANITIZE=1``)."""
    from repro.devtools.sanitize import errstate_guard

    with errstate_guard():
        yield


@pytest.fixture(scope="session", autouse=_SANITIZE)
def _sanitize_segment_audit():
    """End-of-session shm leak audit (armed by ``REPRO_SANITIZE=1``).

    Any segment exported during the suite and never unlinked — an
    exception path that skipped ``SharedStructureSet.close()`` and
    dodged the finalize guard — fails the session loudly instead of
    leaking /dev/shm bytes.
    """
    yield
    import gc

    from repro.core.kernels.shm import leaked_segments

    gc.collect()  # let finalize guards of dropped sets run first
    leaked = leaked_segments()
    assert not leaked, (
        f"shared-memory segments leaked by the test session: {leaked}"
    )


@pytest.fixture
def triangle() -> Graph:
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Graph:
    return generators.path(4)


@pytest.fixture
def star6() -> Graph:
    """A star with hub 0 and five leaves."""
    return generators.star(6)


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph — 3-regular, girth 5, a classic stress case."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return Graph(10, outer + spokes + inner)


@pytest.fixture
def er_graph() -> Graph:
    """A fixed mid-size sparse random graph (may be disconnected)."""
    return generators.erdos_renyi_mean_degree(80, 6.0, seed=42)


@pytest.fixture
def isolated_plus_edge() -> Graph:
    """Two connected vertices plus an isolated one — min edge-case combo."""
    return Graph(3, [(0, 1)])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)


def small_graph_zoo():
    """A deterministic list of (name, graph) pairs covering the families.

    Function (not fixture) so tests can parametrize over it at collection
    time.
    """
    return [
        ("empty3", Graph(3)),
        ("single", Graph(1)),
        ("edge", Graph(2, [(0, 1)])),
        ("path7", generators.path(7)),
        ("cycle8", generators.cycle(8)),
        ("star9", generators.star(9)),
        ("complete5", generators.complete(5)),
        ("grid3x4", generators.grid_2d(3, 4)),
        ("tree_d3", generators.binary_tree(3)),
        ("hypercube3", generators.hypercube(3)),
        ("er20", generators.erdos_renyi_mean_degree(20, 4.0, seed=3)),
        ("regular12", generators.random_regular(12, 3, seed=4)),
        ("ba25", generators.barabasi_albert(25, 2, seed=5)),
        ("bipartite", generators.complete_bipartite(3, 4)),
    ]
