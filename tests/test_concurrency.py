"""The concurrency & process-lifecycle analyzer: every RPR7xx rule.

Covers: the fixture corpus (one flagging and one clean file per rule,
with the RPR701 factory case split across a module boundary and a ≥2-hop
interprocedural flag case per rule), the must-analysis edge cases
(escapes, context managers, try/finally, raise paths), pragma handling
at both granularities, baseline round-trips, SARIF output, the ``repro
check`` integration, catalogue/docs sync, and the wall-time budget on
the real tree.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.concurrency import (
    CONCURRENCY_RULES,
    analyze_paths,
    analyze_sources,
    concurrency_catalogue,
)
from repro.devtools.dataflow.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.devtools.dataflow.sarif import to_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "dataflow_fixtures"

ALL_RULE_IDS = ("RPR701", "RPR702", "RPR703", "RPR704", "RPR705")


@pytest.fixture(scope="module")
def corpus_report():
    return analyze_paths([str(FIXTURES)], root=REPO_ROOT)


def rules_in(report, path_fragment):
    return sorted(
        v.rule for v in report.violations if path_fragment in v.path
    )


# ----------------------------------------------------------------------
# The fixture corpus: each rule fires on its flag file, never on clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_catches_its_seeded_fixture(corpus_report, rule_id):
    stem = f"df{rule_id[3:]}_flag"
    flagged = rules_in(corpus_report, stem)
    assert flagged and set(flagged) == {rule_id}


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_passes_its_clean_fixture(corpus_report, rule_id):
    stem = f"df{rule_id[3:]}_clean"
    assert rules_in(corpus_report, stem) == []


def test_corpus_parses_cleanly(corpus_report):
    assert corpus_report.errors == []
    assert rules_in(corpus_report, "df701_lib") == []


def test_rpr701_crosses_the_module_boundary(corpus_report):
    """The factory's fresh segment becomes the caller's obligation."""
    flagged = [
        v for v in corpus_report.violations
        if v.symbol.endswith(".leak_from_factory")
    ]
    assert len(flagged) == 1
    assert "df701_flag" in flagged[0].path  # not the factory module


def test_rpr701_flags_unlink_under_a_live_pool(corpus_report):
    [violation] = [
        v for v in corpus_report.violations
        if v.symbol.endswith(".unlink_under_live_pool")
    ]
    assert "use-after-unlink" in violation.message


def test_rpr702_names_the_helper_hop(corpus_report):
    [violation] = [
        v for v in corpus_report.violations if v.symbol.endswith(".run")
        and "df702_flag" in v.path
    ]
    assert "via callee" in violation.message


def test_rpr703_names_the_captured_state_through_a_hop(corpus_report):
    [violation] = [
        v for v in corpus_report.violations
        if "df703_flag" in v.path and "sample_noise" in v.message
    ]
    assert "_RNG" in violation.message and "draw" in violation.message


def test_rpr704_flags_the_helper_submit_after_shutdown(corpus_report):
    [violation] = [
        v for v in corpus_report.violations
        if v.symbol.endswith(".reuse_after_shutdown")
    ]
    assert "helper submits" in violation.message


def test_rpr705_flags_the_helper_hop(corpus_report):
    [violation] = [
        v for v in corpus_report.violations if v.symbol.endswith(".churn")
        and "df705_flag" in v.path
    ]
    assert "via callee" in violation.message


# ----------------------------------------------------------------------
# Interprocedural behavior on in-memory sources
# ----------------------------------------------------------------------
def test_rpr701_escaped_segments_are_the_callers_problem():
    """Returning or attribute-storing a segment transfers the obligation."""
    report = analyze_sources({
        "m": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def open_scratch(num):\n"
            "    return SharedMemory(create=True, size=num)\n"
            "class Holder:\n"
            "    def __init__(self, num):\n"
            "        self.seg = SharedMemory(create=True, size=num)\n"
        )
    })
    assert report.violations == []


def test_rpr701_raise_paths_carry_no_close_obligation():
    report = analyze_sources({
        "m": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def run(num):\n"
            "    seg = SharedMemory(create=True, size=num)\n"
            "    if num < 0:\n"
            "        raise ValueError(num)\n"
            "    seg.close()\n"
            "    seg.unlink()\n"
            "    return 0\n"
        )
    })
    assert report.violations == []


def test_rpr701_close_without_unlink_still_leaks():
    report = analyze_sources({
        "m": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def run(num):\n"
            "    seg = SharedMemory(create=True, size=num)\n"
            "    try:\n"
            "        return seg.name\n"
            "    finally:\n"
            "        seg.close()\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR701"]


def test_rpr701_attach_side_has_no_unlink_obligation():
    """Attached (create-less) segments are worker-side: no ownership."""
    report = analyze_sources({
        "m": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def peek(name):\n"
            "    seg = SharedMemory(name=name)\n"
            "    return seg.size\n"
        )
    })
    assert report.violations == []


def test_rpr702_out_kwarg_reaches_the_attached_view():
    report = analyze_sources({
        "m": (
            "import numpy as np\n"
            "from repro.core.kernels.shm import attach_structure\n"
            "def run(manifest, x):\n"
            "    view = attach_structure(manifest).dense\n"
            "    np.add(view, x, out=view)\n"
            "    return view\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR702"]


def test_rpr702_mutation_three_hops_from_the_attach():
    report = analyze_sources({
        "a": (
            "def saturate(block):\n"
            "    block += 1\n"
            "    return block\n"
        ),
        "b": (
            "from a import saturate\n"
            "def rescale(block):\n"
            "    return saturate(block)\n"
        ),
        "c": (
            "from b import rescale\n"
            "from repro.core.kernels.shm import attach_structure\n"
            "def run(manifest):\n"
            "    return rescale(attach_structure(manifest).csr)\n"
        ),
    })
    assert [(v.rule, v.path) for v in report.violations] == [("RPR702", "c.py")]


def test_rpr703_initializer_capture_is_flagged():
    report = analyze_sources({
        "m": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import numpy as np\n"
            "_RNG = np.random.default_rng(7)\n"
            "def warm():\n"
            "    return _RNG.random()\n"
            "def run(task, item):\n"
            "    with ProcessPoolExecutor(2, initializer=warm) as pool:\n"
            "        return pool.submit(task, item)\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR703"]


def test_rpr703_direct_cache_mutation_vs_helper_seeding():
    """Only mutation in the submitted callable's own body counts.

    Calling a helper that mutates a module cache (the blessed
    ``structure_for``/``seed_structure`` worker idiom) stays quiet.
    """
    flagged = analyze_sources({
        "m": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_CACHE = {}\n"
            "def poison(key):\n"
            "    _CACHE[key] = 1\n"
            "    return key\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        return [pool.submit(poison, i) for i in items]\n"
        )
    })
    assert [v.rule for v in flagged.violations] == ["RPR703"]
    quiet = analyze_sources({
        "m": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_CACHE = {}\n"
            "def seed(key):\n"
            "    _CACHE[key] = 1\n"
            "    return key\n"
            "def worker(key):\n"
            "    return seed(key)\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        return [pool.submit(worker, i) for i in items]\n"
        )
    })
    assert quiet.violations == []


def test_rpr704_guarded_owner_with_finally_close_is_clean():
    """The run_sweep owned-pool idiom: conditional create, finally close."""
    report = analyze_sources({
        "m": (
            "from repro.analysis.sweep import SweepPool\n"
            "def run(graphs, jobs):\n"
            "    owned = None\n"
            "    if jobs > 1:\n"
            "        owned = SweepPool(jobs, graphs)\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        if owned is not None:\n"
            "            owned.close()\n"
        )
    })
    assert report.violations == []


def test_rpr704_return_before_finally_sees_the_finally_effects():
    report = analyze_sources({
        "m": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run():\n"
            "    pool = ProcessPoolExecutor(2)\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        pool.shutdown()\n"
        )
    })
    assert report.violations == []


def test_rpr704_early_return_without_finally_is_flagged():
    report = analyze_sources({
        "m": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(flag):\n"
            "    pool = ProcessPoolExecutor(2)\n"
            "    if flag:\n"
            "        return None\n"
            "    pool.shutdown()\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR704"]


def test_rpr704_submit_inside_with_block_is_legal():
    report = analyze_sources({
        "m": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(task, items):\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        return [pool.submit(task, i) for i in items]\n"
        )
    })
    assert report.violations == []


def test_rpr705_exempts_the_service_home_modules():
    source = (
        "def apply_op(service):\n"
        "    service.topology.add_node()\n"
        "    return service\n"
    )
    home = analyze_sources({"repro.serve.service": source})
    assert home.violations == []
    elsewhere = analyze_sources({"repro.apps.tool": source})
    assert [v.rule for v in elsewhere.violations] == ["RPR705"]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_a_concurrency_finding():
    report = analyze_sources({
        "m": (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def run(num):\n"
            "    seg = SharedMemory(create=True, size=num)  # repro: allow[RPR701]\n"
            "    return seg.name\n"
        )
    })
    assert report.violations == []


def test_file_pragma_suppresses_the_whole_file():
    source = (
        "# repro: allow-file[RPR704]\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def run():\n"
        "    pool = ProcessPoolExecutor(2)\n"
        "    return pool\n"
    )
    assert analyze_sources({"m": source}).violations == []


def test_file_pragma_is_rule_specific():
    report = analyze_sources({
        "m": (
            "# repro: allow-file[RPR701]\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(flag):\n"
            "    pool = ProcessPoolExecutor(2)\n"
            "    if flag:\n"
            "        return None\n"
            "    pool.shutdown()\n"
        )
    })
    assert [v.rule for v in report.violations] == ["RPR704"]


# ----------------------------------------------------------------------
# Baseline round-trip (shared plumbing with the dataflow analyzer)
# ----------------------------------------------------------------------
def test_baseline_round_trip_suppresses_known_findings(tmp_path, corpus_report):
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, corpus_report.violations)
    fingerprints = load_baseline(baseline_path)
    assert apply_baseline(corpus_report.violations, fingerprints) == []
    fresh = analyze_sources({
        "other": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def newly_buggy():\n"
            "    return ProcessPoolExecutor(2)\n"
        )
    }).violations
    assert apply_baseline(fresh, fingerprints) == fresh


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_includes_the_concurrency_catalogue(corpus_report):
    log = to_sarif([v.to_json() for v in corpus_report.violations])
    [run] = log["runs"]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert set(ALL_RULE_IDS) <= rule_ids
    assert len(run["results"]) == len(corpus_report.violations)
    for result in run["results"]:
        assert result["ruleIndex"] >= 0  # every RPR7xx is catalogued


# ----------------------------------------------------------------------
# Catalogue / docs sync
# ----------------------------------------------------------------------
def test_concurrency_catalogue_is_complete():
    rows = concurrency_catalogue()
    ids = [rule_id for rule_id, _, _ in rows]
    assert ids == sorted(ids)
    assert tuple(ids) == ALL_RULE_IDS
    for rule_id, title, rationale in rows:
        assert title and rationale, rule_id
    assert len(CONCURRENCY_RULES) == len(ALL_RULE_IDS)


def test_docs_cover_every_concurrency_rule():
    docs = (REPO_ROOT / "docs" / "linting.md").read_text(encoding="utf-8")
    for rule_id, title, _ in concurrency_catalogue():
        assert rule_id in docs, f"{rule_id} missing from docs/linting.md"
        assert title in docs, f"title of {rule_id} missing from docs/linting.md"
    perf = (REPO_ROOT / "docs" / "performance.md").read_text(encoding="utf-8")
    assert "concurrency & lifecycle contract" in perf
    assert "RPR701" in perf


# ----------------------------------------------------------------------
# The real tree and the repro check integration
# ----------------------------------------------------------------------
def test_real_source_tree_is_concurrency_clean():
    report = analyze_paths([str(SRC / "repro")], root=REPO_ROOT)
    assert report.errors == []
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )


def test_analyzer_wall_time_budget():
    import time

    start = time.perf_counter()
    analyze_paths([str(SRC / "repro")], root=REPO_ROOT)
    assert time.perf_counter() - start < 10.0


def test_check_json_payload_reports_concurrency_timing():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", "--no-external",
         "--no-contract", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    [conc] = [t for t in payload["tools"] if t["name"] == "repro-concurrency"]
    assert conc["status"] == "passed"
    assert conc["data"]["elapsed_s"] < 10.0
    assert conc["data"]["modules"] > 50


def test_check_flags_baselines_and_exports_a_seeded_leak(tmp_path):
    bad = tmp_path / "pkg"
    bad.mkdir()
    (bad / "leaky.py").write_text(
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def run(num):\n"
        "    seg = SharedMemory(create=True, size=num)\n"
        "    return seg.name\n",
        encoding="utf-8",
    )
    sarif_path = tmp_path / "out.sarif"

    def check(*extra):
        return subprocess.run(
            [sys.executable, "-m", "repro", "check", str(bad),
             "--no-external", "--no-contract", "--format", "json", *extra],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    proc = check("--sarif", str(sarif_path))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    [conc] = [t for t in payload["tools"] if t["name"] == "repro-concurrency"]
    [violation] = conc["violations"]
    assert violation["rule"] == "RPR701"
    sarif = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert [r["ruleId"] for r in sarif["runs"][0]["results"]] == ["RPR701"]

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps({
            "version": 1,
            "suppressions": [{
                "rule": violation["rule"],
                "path": violation["path"],
                "symbol": violation["symbol"],
            }],
        }),
        encoding="utf-8",
    )
    proc = check("--baseline", str(baseline_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    [conc] = [t for t in payload["tools"] if t["name"] == "repro-concurrency"]
    assert conc["violations"] == []
    assert conc["data"]["suppressed_by_baseline"] == 1
