"""Tests for the plain-text run visualization."""

import pytest

from repro.analysis.visualize import (
    level_glyph,
    render_histogram,
    render_levels,
    render_run,
)


class TestLevelGlyph:
    def test_mis_corner(self):
        assert level_glyph(-5, 5) == "■"

    def test_prominent(self):
        assert level_glyph(0, 5) == "▲"
        assert level_glyph(-3, 5) == "▲"

    def test_max_level(self):
        assert level_glyph(5, 5) == "·"
        assert level_glyph(9, 5) == "·"  # clamped above

    def test_competition_digits_small_ellmax(self):
        assert level_glyph(1, 5) == "1"
        assert level_glyph(4, 5) == "4"

    def test_competition_digits_scaled(self):
        # ℓmax = 40: digits must stay in 1..9.
        glyphs = {level_glyph(l, 40) for l in range(1, 40)}
        assert glyphs <= set("123456789")
        assert level_glyph(1, 40) == "1"
        assert level_glyph(39, 40) == "9"

    def test_invalid_ellmax(self):
        with pytest.raises(ValueError):
            level_glyph(0, 0)


class TestRenderLevels:
    def test_line_per_vertex(self):
        line = render_levels([-4, 4, 1, 0], [4, 4, 4, 4])
        assert line == "■·1▲"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_levels([1], [4, 4])

    def test_heterogeneous_ell_max(self):
        assert render_levels([-2, 8], [2, 8]) == "■·"


class TestRenderRun:
    def test_short_run_shows_all_rounds(self):
        snapshots = [[1, 1], [0, 2], [-2, 2]]
        text = render_run(snapshots, [2, 2])
        assert text.count("\n") == 3  # 3 rows + legend
        assert "t=0" in text and "t=2" in text
        assert "legend" in text

    def test_long_run_elides_middle(self):
        snapshots = [[i % 3] * 2 for i in range(100)]
        text = render_run(snapshots, [4, 4], max_rows=10)
        assert "elided" in text
        assert "t=0" in text and "t=99" in text
        assert "t=50" not in text

    def test_annotations(self):
        text = render_run([[1], [2]], [4], annotate=["boot", "after"])
        assert "boot" in text and "after" in text

    def test_annotation_length_checked(self):
        with pytest.raises(ValueError):
            render_run([[1], [2]], [4], annotate=["only-one"])


class TestRenderHistogram:
    def test_counts_rendered(self):
        text = render_histogram([-2, -2, 0, 2], 2)
        lines = text.splitlines()
        assert len(lines) == 5  # -2..2
        assert lines[0].startswith("  -2")
        assert "2" in lines[0]  # count of the -2 bucket

    def test_out_of_range_level(self):
        with pytest.raises(ValueError):
            render_histogram([5], 2)

    def test_empty_input(self):
        text = render_histogram([], 1)
        assert len(text.splitlines()) == 3
