"""Unit tests for graph serialization and interop."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.io import (
    from_edge_list_text,
    from_networkx,
    load_edge_list,
    save_edge_list,
    to_adjacency_dict,
    to_edge_list_text,
    to_networkx,
    to_sparse_adjacency,
)


class TestEdgeListText:
    def test_round_trip(self, petersen):
        assert from_edge_list_text(to_edge_list_text(petersen)) == petersen

    def test_round_trip_with_isolated(self):
        g = Graph(5, [(0, 1)])
        restored = from_edge_list_text(to_edge_list_text(g))
        assert restored.num_vertices == 5  # header preserves isolated nodes

    def test_parse_without_header(self):
        g = from_edge_list_text("0 1\n1 2\n")
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_comments_and_blanks(self):
        text = "# a comment\nn 4\n\n0 1  # trailing comment\n2 3\n"
        g = from_edge_list_text(text)
        assert g.num_vertices == 4
        assert g.num_edges == 2

    def test_malformed_line(self):
        with pytest.raises(ValueError, match="expected"):
            from_edge_list_text("0 1 2\n")

    def test_malformed_header(self):
        with pytest.raises(ValueError, match="header"):
            from_edge_list_text("n\n")

    def test_empty_text(self):
        g = from_edge_list_text("")
        assert g.num_vertices == 0

    def test_file_round_trip(self, tmp_path, er_graph):
        path = tmp_path / "graph.txt"
        save_edge_list(er_graph, path)
        assert load_edge_list(path) == er_graph


class TestAdjacency:
    def test_adjacency_dict(self, path4):
        assert to_adjacency_dict(path4) == {
            0: (1,),
            1: (0, 2),
            2: (1, 3),
            3: (2,),
        }

    def test_sparse_adjacency_symmetric(self, petersen):
        A = to_sparse_adjacency(petersen)
        assert A.shape == (10, 10)
        assert (A != A.T).nnz == 0
        assert A.diagonal().sum() == 0
        assert A.sum() == 2 * petersen.num_edges

    def test_sparse_adjacency_empty(self):
        A = to_sparse_adjacency(Graph(3))
        assert A.shape == (3, 3)
        assert A.nnz == 0

    def test_sparse_matvec_is_neighborhood_or(self, star6):
        A = to_sparse_adjacency(star6)
        beeps = np.zeros(6, dtype=np.int8)
        beeps[3] = 1  # one leaf beeps
        heard = A.dot(beeps) > 0
        assert heard[0] and not heard[3]
        assert not heard[1]


class TestNetworkx:
    def test_round_trip(self, petersen):
        pytest.importorskip("networkx")
        assert from_networkx(to_networkx(petersen)) == petersen

    def test_isolated_preserved(self):
        pytest.importorskip("networkx")
        g = Graph(4, [(0, 1)])
        assert from_networkx(to_networkx(g)).num_vertices == 4

    def test_from_networkx_relabels(self):
        nx = pytest.importorskip("networkx")
        h = nx.Graph()
        h.add_edge(10, 20)
        h.add_node(15)
        g = from_networkx(h)
        assert g.num_vertices == 3
        assert g.has_edge(0, 2)  # 10 -> 0, 20 -> 2
