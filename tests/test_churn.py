"""Tests for topology churn (graph-change self-stabilization)."""

import numpy as np
import pytest

from repro.core.churn import carry_levels, restabilize_after_churn, rewire_edges
from repro.core.knowledge import max_degree_policy, uniform_policy
from repro.core.vectorized import simulate_single
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis


@pytest.fixture
def base_graph():
    return gen.erdos_renyi_mean_degree(80, 6.0, seed=21)


class TestRewireEdges:
    def test_edge_count_preserved(self, base_graph):
        event = rewire_edges(base_graph, 0.3, seed=1)
        assert event.graph.num_edges == base_graph.num_edges
        assert len(event.removed) == len(event.added)
        assert event.churned_edges > 0

    def test_fraction_zero_is_identity(self, base_graph):
        event = rewire_edges(base_graph, 0.0, seed=2)
        assert event.graph == base_graph
        assert event.churned_edges == 0

    def test_fraction_validated(self, base_graph):
        with pytest.raises(ValueError):
            rewire_edges(base_graph, 1.5)

    def test_removed_edges_gone_added_present(self, base_graph):
        event = rewire_edges(base_graph, 0.2, seed=3)
        for u, v in event.removed:
            if (u, v) not in event.added:
                assert not event.graph.has_edge(u, v)
        for u, v in event.added:
            assert event.graph.has_edge(u, v)

    def test_degree_cap_respected(self, base_graph):
        cap = base_graph.max_degree()
        for seed in range(5):
            event = rewire_edges(base_graph, 0.5, seed=seed, max_degree_cap=cap)
            assert event.graph.max_degree() <= cap

    def test_trivial_graphs(self):
        assert rewire_edges(Graph(1), 0.5, seed=1).churned_edges == 0
        assert rewire_edges(Graph(5), 0.5, seed=1).churned_edges == 0


class TestCarryLevels:
    def test_identity_when_in_range(self, base_graph):
        policy = uniform_policy(base_graph, 5)
        levels = np.array([5, -5, 0, 2] + [1] * 76)
        assert (carry_levels(levels, policy) == levels).all()

    def test_clamps_out_of_range(self):
        policy = uniform_policy(Graph(3), 3)
        assert list(carry_levels(np.array([9, -9, 0]), policy)) == [3, -3, 0]


class TestRestabilization:
    def test_recovers_valid_mis_after_churn(self, base_graph):
        cap = base_graph.max_degree() + 4
        policy = max_degree_policy(base_graph, c1=4, delta_upper=cap)
        first = simulate_single(base_graph, policy, seed=5, arbitrary_start=True)
        assert first.stabilized

        event = rewire_edges(base_graph, 0.25, seed=6, max_degree_cap=cap)
        result = restabilize_after_churn(
            event, policy, first.final_levels, seed=7
        )
        assert result.stabilized
        assert check_mis(event.graph, result.mis) is None

    def test_zero_churn_costs_zero_rounds(self, base_graph):
        policy = max_degree_policy(base_graph, c1=4)
        first = simulate_single(base_graph, policy, seed=8, arbitrary_start=True)
        event = rewire_edges(base_graph, 0.0, seed=9)
        result = restabilize_after_churn(event, policy, first.final_levels, seed=10)
        assert result.stabilized
        assert result.rounds == 0
        assert result.mis == first.mis

    def test_small_churn_cheaper_than_cold_start(self, base_graph):
        """A few rewired edges should re-stabilize much faster than a
        from-scratch run (locality of repair)."""
        cap = base_graph.max_degree() + 4
        policy = max_degree_policy(base_graph, c1=4, delta_upper=cap)
        cold = np.mean(
            [
                simulate_single(
                    base_graph, policy, seed=s, arbitrary_start=True
                ).rounds
                for s in range(5)
            ]
        )
        warm = []
        for s in range(5):
            first = simulate_single(
                base_graph, policy, seed=100 + s, arbitrary_start=True
            )
            event = rewire_edges(base_graph, 0.05, seed=s, max_degree_cap=cap)
            result = restabilize_after_churn(
                event, policy, first.final_levels, seed=200 + s
            )
            assert result.stabilized
            warm.append(result.rounds)
        assert np.mean(warm) < cold

    def test_repeated_churn_epochs(self, base_graph):
        """Ten consecutive churn epochs, levels carried throughout."""
        cap = base_graph.max_degree() + 6
        policy = max_degree_policy(base_graph, c1=4, delta_upper=cap)
        graph = base_graph
        result = simulate_single(graph, policy, seed=11, arbitrary_start=True)
        assert result.stabilized
        for epoch in range(10):
            event = rewire_edges(graph, 0.15, seed=epoch, max_degree_cap=cap)
            graph = event.graph
            result = restabilize_after_churn(
                event, policy, result.final_levels, seed=300 + epoch
            )
            assert result.stabilized, f"epoch {epoch}"
            assert check_mis(graph, result.mis) is None
