"""The runtime sanitizers: traps must trap, audits must pass on the tree.

Proves (a) an injected in-place mutation of an engine-shared array
raises under the freeze, (b) an injected scalar integer overflow raises
under the errstate guard, (c) the RNG draw / seed-tree audits accept
the current engines and would reject off-contract draws, and (d) the
``repro check --sanitize`` gate is green end to end.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.engines.base import drive
from repro.core.engines.single import SingleChannelEngine
from repro.core.knowledge import max_degree_policy
from repro.devtools.sanitize import (
    engine_shared_arrays,
    errstate_guard,
    frozen_arrays,
    run_sanitizers,
)
from repro.graphs.graph import Graph

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_engine(seed=11):
    graph = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    return SingleChannelEngine(graph, max_degree_policy(graph), seed)


# ----------------------------------------------------------------------
# The traps trap
# ----------------------------------------------------------------------
def test_frozen_arrays_trap_injected_graph_mutation():
    engine = make_engine()
    shared = engine_shared_arrays(engine)
    assert len(shared) >= 4  # csr triplet + ell_max at minimum
    with frozen_arrays(shared):
        with pytest.raises(ValueError, match="read-only"):
            engine.adjacency.data[0] = 99
        with pytest.raises(ValueError, match="read-only"):
            engine.ell_max[0] = 1
    # Flags are restored afterwards.
    assert all(a.flags.writeable for a in shared)
    engine.ell_max[0] = engine.ell_max[0]  # writable again


def test_frozen_arrays_restore_on_error():
    engine = make_engine()
    shared = engine_shared_arrays(engine)
    with pytest.raises(RuntimeError):
        with frozen_arrays(shared):
            raise RuntimeError("boom")
    assert all(a.flags.writeable for a in shared)


def test_errstate_traps_injected_int_overflow():
    with errstate_guard():
        with pytest.raises(FloatingPointError):
            np.int8(127) + np.int8(1)


def test_errstate_traps_injected_invalid_op():
    with errstate_guard():
        with pytest.raises(FloatingPointError):
            np.float64(0.0) / np.float64(0.0)


def test_engine_runs_clean_under_both_traps():
    engine = make_engine()
    engine.randomize_levels()
    with errstate_guard(), frozen_arrays(engine_shared_arrays(engine)):
        result = drive(engine, 10_000, 1, False)
    assert result.stabilized


# ----------------------------------------------------------------------
# The audits audit
# ----------------------------------------------------------------------
def test_rng_twin_replay_detects_off_contract_draws():
    """An engine that drew extra randomness diverges from the twin."""
    from repro.devtools.seeding import resolve_rng

    engine = make_engine(seed=5)
    rounds = 16
    for _ in range(rounds):
        engine.step()
    engine.rng.random()  # the injected off-contract draw
    twin = resolve_rng(5)
    for _ in range(rounds):
        twin.random(engine.n)
    assert engine.rng.bit_generator.state != twin.bit_generator.state


def test_run_sanitizers_all_green():
    results = run_sanitizers()
    assert [r.name for r in results] == [
        "engine-numerics",
        "rng-draw-audit",
        "batched-seed-tree",
        "sweep-seed-tree",
        "shm-leak-audit",
        "pool-crash-recovery",
        "hotpath-allocation-audit",
    ]
    failures = [r.format() for r in results if not r.ok]
    assert not failures, "\n".join(failures)


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------
def test_check_sanitize_gate_is_green():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", "--sanitize",
         "--no-external", "--no-contract", "--format", "json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    [sanitizers] = [t for t in payload["tools"] if t["name"] == "sanitizers"]
    assert sanitizers["status"] == "passed"
    checks = {c["name"]: c["ok"] for c in sanitizers["data"]["checks"]}
    assert checks == {
        "engine-numerics": True,
        "rng-draw-audit": True,
        "batched-seed-tree": True,
        "sweep-seed-tree": True,
        "shm-leak-audit": True,
        "pool-crash-recovery": True,
        "hotpath-allocation-audit": True,
    }
