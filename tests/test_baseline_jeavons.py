"""Tests for the Jeavons–Scott–Xu baseline (clean-start correctness and
the documented non-self-stabilization failure modes)."""

import pytest

from repro.baselines.jeavons import (
    ACTIVE,
    IN_MIS,
    OUT,
    WINNER,
    JeavonsMIS,
    JeavonsState,
)
from repro.beeping.algorithm import LocalKnowledge, NodeOutput
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.mis import check_mis

from conftest import small_graph_zoo


ALG = JeavonsMIS()
K = LocalKnowledge()


def make_network(graph, seed=0, initial_states=None):
    knowledge = [LocalKnowledge() for _ in graph.vertices()]
    return BeepingNetwork(
        graph, ALG, knowledge, seed=seed, initial_states=initial_states
    )


class TestUnitBehaviour:
    def test_fresh_state(self):
        state = ALG.fresh_state(K)
        assert state == JeavonsState(ACTIVE, 0, 1, False)

    def test_exchange_beep_probability_half(self):
        state = ALG.fresh_state(K)
        assert ALG.beeps(state, K, 0.49) == (True,)
        assert ALG.beeps(state, K, 0.51) == (False,)

    def test_winner_notifies(self):
        winner = JeavonsState(WINNER, 1, 1, False)
        assert ALG.beeps(winner, K, 0.99) == (True,)

    def test_decided_states_silent(self):
        for role in (IN_MIS, OUT):
            for phase in (0, 1):
                state = JeavonsState(role, phase, 1, False)
                assert ALG.beeps(state, K, 0.0) == (False,)

    def test_solo_exchange_beep_wins(self):
        state = ALG.fresh_state(K)
        after = ALG.step(state, (True,), (False,), K)
        assert after.role == WINNER and after.phase == 1

    def test_probability_adaptation(self):
        # Heard a beep in exchange → p halves at the end of the phase.
        s = JeavonsState(ACTIVE, 1, exponent=2, heard_exchange=True)
        assert ALG.step(s, (False,), (False,), K).exponent == 3
        # Silent exchange → p doubles, capped at 1/2 (exponent >= 1).
        s = JeavonsState(ACTIVE, 1, exponent=1, heard_exchange=False)
        assert ALG.step(s, (False,), (False,), K).exponent == 1

    def test_notification_eliminates_neighbor(self):
        s = JeavonsState(ACTIVE, 1, 1, False)
        assert ALG.step(s, (False,), (True,), K).role == OUT

    def test_winner_becomes_mis(self):
        s = JeavonsState(WINNER, 1, 1, False)
        assert ALG.step(s, (True,), (False,), K).role == IN_MIS

    def test_outputs(self):
        assert ALG.output(JeavonsState(IN_MIS, 0, 1, False), K) is NodeOutput.IN_MIS
        assert ALG.output(JeavonsState(OUT, 0, 1, False), K) is NodeOutput.NOT_IN_MIS
        assert ALG.output(JeavonsState(ACTIVE, 0, 1, False), K) is NodeOutput.UNDECIDED


class TestCleanStartCorrectness:
    @pytest.mark.parametrize("name,graph", small_graph_zoo())
    def test_terminates_with_valid_mis(self, name, graph):
        network = make_network(graph, seed=3)
        result = run_until_stable(network, max_rounds=4000)
        assert result.stabilized, name
        assert check_mis(graph, result.mis) is None, name

    def test_round_count_reasonable(self, er_graph):
        rounds = []
        for seed in range(5):
            network = make_network(er_graph, seed=seed)
            result = run_until_stable(network, max_rounds=4000)
            assert result.stabilized
            rounds.append(result.rounds)
        # O(log n) regime: double-digit rounds for n = 80, not hundreds.
        assert max(rounds) < 200


class TestNonSelfStabilization:
    def test_adjacent_mis_corruption_is_permanent(self):
        """Two adjacent vertices corrupted into the MIS state stay there:
        decided states are silent and absorbing, so the configuration
        never becomes legal — the failure Algorithm 1 fixes."""
        g = Graph(2, [(0, 1)])
        bad = JeavonsState(IN_MIS, 0, 1, False)
        network = make_network(g, seed=1, initial_states=[bad, bad])
        result = run_until_stable(network, max_rounds=500)
        assert not result.stabilized

    def test_all_out_corruption_is_permanent(self):
        """Everyone corrupted to non-member: nobody ever joins again."""
        g = gen.path(4)
        bad = JeavonsState(OUT, 0, 1, False)
        network = make_network(g, seed=1, initial_states=[bad] * 4)
        result = run_until_stable(network, max_rounds=500)
        assert not result.stabilized

    def test_phase_desynchronization_breaks_the_star(self):
        """The modulo-2 synchronization failure the paper removes: start
        the hub of a star one phase *ahead* of its leaves (hub = WINNER
        about to notify, leaves in their exchange round).  The leaves
        interpret the notification as exchange noise and never learn the
        hub joined; since the hub is silent afterwards, every leaf
        eventually beeps alone and joins the MIS too — the final set
        contains the hub and its leaves, which is not independent, so the
        run never reaches a legal configuration."""
        g = gen.star(6)
        states = [JeavonsState(WINNER, 1, 1, False)] + [
            JeavonsState(ACTIVE, 0, 1, False) for _ in range(5)
        ]
        for seed in range(5):
            network = make_network(g, seed=seed, initial_states=states)
            result = run_until_stable(network, max_rounds=600)
            assert not result.stabilized
            # The hub decided IN_MIS and at least one leaf joined too.
            roles = [s.role for s in network.states]
            assert roles[0] == IN_MIS
            assert IN_MIS in roles[1:]
