"""Tests for the transient-fault injection machinery."""

import numpy as np
import pytest

from repro.beeping.faults import (
    AdversarialPattern,
    BernoulliCorruption,
    FaultSchedule,
    RandomCorruption,
    TargetedCorruption,
    random_states,
)
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import max_degree_policy
from repro.graphs.mis import check_mis


def make_network(graph, seed=0, c1=4):
    policy = max_degree_policy(graph, c1=c1)
    return BeepingNetwork(
        graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=seed
    )


def stabilize(network, budget=20_000):
    result = run_until_stable(network, max_rounds=budget)
    assert result.stabilized
    return result


class TestCorruptionModels:
    def test_random_states_in_universe(self, er_graph):
        policy = max_degree_policy(er_graph, c1=4)
        states = random_states(
            SelfStabilizingMIS(), policy.knowledge(er_graph), seed=1
        )
        e = policy.ell_max[0]
        assert all(-e <= s <= e for s in states)

    def test_random_corruption_replaces_everything(self, er_graph):
        network = make_network(er_graph)
        rng = np.random.default_rng(2)
        RandomCorruption().apply(network, rng)
        # Fresh states are all 1; after corruption most are not.
        assert sum(1 for s in network.states if s != 1) > 40

    def test_bernoulli_rho_zero_is_noop(self, er_graph):
        network = make_network(er_graph)
        before = network.states
        BernoulliCorruption(0.0).apply(network, np.random.default_rng(3))
        assert network.states == before

    def test_bernoulli_rho_validated(self):
        with pytest.raises(ValueError):
            BernoulliCorruption(1.5)

    def test_bernoulli_partial(self, er_graph):
        network = make_network(er_graph)
        BernoulliCorruption(0.3).apply(network, np.random.default_rng(4))
        changed = sum(1 for s in network.states if s != 1)
        # ~24 of 80 expected; allow generous slack but demand partiality.
        assert 5 < changed < 60

    def test_targeted(self, path4):
        network = make_network(path4)
        TargetedCorruption(vertices=(2,)).apply(network, np.random.default_rng(1))
        assert network.states[0] == 1 and network.states[1] == 1

    def test_adversarial_patterns(self, er_graph):
        network = make_network(er_graph)
        e = network.knowledge[0].ell_max
        AdversarialPattern.all_silent().apply(network, np.random.default_rng(0))
        assert all(s == e for s in network.states)
        AdversarialPattern.all_prominent().apply(network, np.random.default_rng(0))
        assert all(s == -e for s in network.states)
        AdversarialPattern.threshold().apply(network, np.random.default_rng(0))
        assert all(s == e - 1 for s in network.states)


class TestRecovery:
    @pytest.mark.parametrize(
        "fault",
        [
            RandomCorruption(),
            BernoulliCorruption(0.5),
            AdversarialPattern.all_silent(),
            AdversarialPattern.all_prominent(),
            AdversarialPattern.threshold(),
        ],
        ids=["random", "bernoulli", "all_silent", "all_prominent", "threshold"],
    )
    def test_recovers_from_any_corruption(self, er_graph, fault):
        """Self-stabilization: stabilize, corrupt, stabilize again."""
        network = make_network(er_graph, seed=5)
        stabilize(network)
        fault.apply(network, np.random.default_rng(6))
        result = stabilize(network)
        assert check_mis(er_graph, result.mis) is None

    def test_recovery_after_targeted_single_fault(self, er_graph):
        """Corrupting one vertex out of a legal configuration recovers,
        possibly to a different MIS."""
        network = make_network(er_graph, seed=7)
        stabilize(network)
        TargetedCorruption(vertices=(0,)).apply(network, np.random.default_rng(8))
        result = stabilize(network)
        assert check_mis(er_graph, result.mis) is None


class TestFaultSchedule:
    def test_events_sorted(self):
        schedule = FaultSchedule(
            events=((30, RandomCorruption()), (10, BernoulliCorruption(0.1)))
        )
        assert [when for when, _ in schedule.events] == [10, 30]
        assert schedule.last_fault_round == 30

    def test_empty_schedule(self):
        assert FaultSchedule(events=()).last_fault_round == -1

    def test_maybe_fire(self, path4):
        network = make_network(path4)
        schedule = FaultSchedule(events=((2, AdversarialPattern.all_silent()),))
        rng = np.random.default_rng(0)
        assert not schedule.maybe_fire(0, network, rng)
        assert schedule.maybe_fire(2, network, rng)
        assert all(s == network.knowledge[0].ell_max for s in network.states)

    def test_run_with_faults_measures_suffix(self, er_graph):
        network = make_network(er_graph, seed=9)
        schedule = FaultSchedule(
            events=(
                (5, BernoulliCorruption(0.3)),
                (15, RandomCorruption()),
            )
        )
        stabilized, recovery = schedule.run_with_faults(
            network, max_rounds=20_000, seed=10
        )
        assert stabilized
        assert recovery >= 0
        assert network.is_legal()


# ----------------------------------------------------------------------
# Array-engine fault path (apply_levels / run_with_engine) and the
# pinned fault-vs-stress ordering (docs/robustness.md)
# ----------------------------------------------------------------------
from repro.beeping.schedulers import BoundScheduler, Scheduler  # noqa: E402
from repro.core.engines import SingleChannelEngine  # noqa: E402
from repro.graphs.graph import Graph  # noqa: E402


class _ScriptedBound(BoundScheduler):
    def __init__(self, model, n):
        super().__init__(model, n)
        self._script = model.script

    def active_mask(self, round_index, rng):
        idx = min(round_index, len(self._script) - 1)
        return np.asarray(self._script[idx], dtype=bool)


class ScriptedScheduler(Scheduler):
    """Test-only scheduler replaying a fixed per-round activity script."""

    name = "scripted"

    def __init__(self, script):
        self.script = tuple(tuple(bool(b) for b in mask) for mask in script)

    @property
    def needs_rng(self):
        return False

    def bind(self, n):
        return _ScriptedBound(self, n)

    def spec(self):
        return "scripted"


def make_engine(graph, seed=0, c1=4, **kwargs):
    policy = max_degree_policy(graph, c1=c1)
    return SingleChannelEngine(graph, policy, seed=seed, **kwargs)


class TestEngineFaults:
    def test_apply_levels_stays_in_universe(self, er_graph):
        rng = np.random.default_rng(3)
        for fault in (
            RandomCorruption(),
            BernoulliCorruption(0.5),
            TargetedCorruption((0, 3, 7)),
            AdversarialPattern.all_silent(),
            AdversarialPattern.all_prominent(),
            AdversarialPattern.threshold(),
        ):
            engine = make_engine(er_graph, seed=1)
            fault.apply_levels(engine, rng)
            floor = engine._floor_vector()
            assert np.all(engine.levels >= floor)
            assert np.all(engine.levels <= engine.ell_max)

    def test_targeted_corruption_touches_only_targets(self, er_graph):
        engine = make_engine(er_graph, seed=1)
        before = engine.levels.copy()
        TargetedCorruption((2, 5)).apply_levels(engine, np.random.default_rng(0))
        untouched = np.ones(engine.n, dtype=bool)
        untouched[[2, 5]] = False
        np.testing.assert_array_equal(engine.levels[untouched], before[untouched])

    def test_custom_adversarial_pattern_has_no_level_form(self, er_graph):
        engine = make_engine(er_graph)
        fault = AdversarialPattern(lambda v, k: 0, name="weird")
        with pytest.raises(NotImplementedError, match="no level-array form"):
            fault.apply_levels(engine, np.random.default_rng(0))

    def test_run_with_engine_recovers(self, er_graph):
        engine = make_engine(er_graph, seed=9)
        schedule = FaultSchedule(
            events=((5, BernoulliCorruption(0.3)), (15, RandomCorruption()))
        )
        stabilized, recovery = schedule.run_with_engine(engine, 20_000)
        assert stabilized
        assert recovery >= 0
        assert engine.is_legal()

    def test_run_with_engine_recovers_under_stress(self, er_graph):
        engine = make_engine(
            er_graph, seed=9, channel="lossy:0.05", scheduler="drift:0.1"
        )
        schedule = FaultSchedule(events=((5, AdversarialPattern.all_silent()),))
        stabilized, _ = schedule.run_with_engine(engine, 50_000)
        assert stabilized
        assert check_mis(er_graph, engine.mis_vertices()) is None

    def test_fault_fires_before_round_executes(self):
        """Regression: the pinned ordering is fault → scheduler gate →
        fresh beeps from *corrupted* levels → hear (+ channel noise).

        Two-vertex path, fully deterministic: round 0 plants a stale
        beep carrier on vertex 1 (level −E beeps with p = 1); round 1
        corrupts everything to −E *before* stepping and delays vertex 1.
        Vertex 0's fresh beep must come from the post-fault level (−E →
        beeps), and it must hear vertex 1's stale carrier and move up to
        −E + 1.  Wrong orderings are distinguishable: fault-after-step
        leaves vertex 0 at −E, and a silent (non-stale) delayed vertex 1
        would also leave vertex 0 at −E (beep → reset).
        """
        graph = Graph(2, [(0, 1)])
        scheduler = ScriptedScheduler([(True, True), (True, False)])
        engine = make_engine(graph, seed=0, scheduler=scheduler)
        e = int(engine.ell_max[0])
        engine.set_levels([e, -e])
        schedule = FaultSchedule(events=((1, AdversarialPattern.all_prominent()),))

        schedule.maybe_fire_engine(0, engine)  # no event at round 0
        engine.step()  # v0 at E: silent; v1 at -E: beeps (carrier=True)
        assert list(engine.levels) == [e, -e]

        assert schedule.maybe_fire_engine(1, engine)  # all_prominent → [-e, -e]
        assert list(engine.levels) == [-e, -e]
        engine.step()  # v1 delayed: stale beep carrier, no update
        assert list(engine.levels) == [-e + 1, -e]

    def test_channel_noise_applies_after_fault(self):
        """Same scenario, total channel loss: the corrupted state still
        drives the beeps, but vertex 0 now hears nothing (drop happens
        after the hear-matvec on post-fault transmissions) and resets."""
        graph = Graph(2, [(0, 1)])
        scheduler = ScriptedScheduler([(True, True), (True, False)])
        engine = make_engine(graph, seed=0, scheduler=scheduler, channel="lossy:1.0")
        e = int(engine.ell_max[0])
        engine.set_levels([e, -e])
        schedule = FaultSchedule(events=((1, AdversarialPattern.all_prominent()),))

        schedule.maybe_fire_engine(0, engine)
        engine.step()
        # v1's beep was dropped, so v0 (silent, heard nothing) drifts down.
        assert list(engine.levels) == [e - 1, -e]

        assert schedule.maybe_fire_engine(1, engine)
        engine.step()
        assert list(engine.levels) == [-e, -e]  # beeped → reset, heard nothing
        assert engine.channel.drops_total >= 1
