"""Tests for the transient-fault injection machinery."""

import numpy as np
import pytest

from repro.beeping.faults import (
    AdversarialPattern,
    BernoulliCorruption,
    FaultSchedule,
    RandomCorruption,
    TargetedCorruption,
    random_states,
)
from repro.beeping.network import BeepingNetwork
from repro.beeping.simulator import run_until_stable
from repro.core.algorithm_single import SelfStabilizingMIS
from repro.core.knowledge import max_degree_policy
from repro.graphs.mis import check_mis


def make_network(graph, seed=0, c1=4):
    policy = max_degree_policy(graph, c1=c1)
    return BeepingNetwork(
        graph, SelfStabilizingMIS(), policy.knowledge(graph), seed=seed
    )


def stabilize(network, budget=20_000):
    result = run_until_stable(network, max_rounds=budget)
    assert result.stabilized
    return result


class TestCorruptionModels:
    def test_random_states_in_universe(self, er_graph):
        policy = max_degree_policy(er_graph, c1=4)
        states = random_states(
            SelfStabilizingMIS(), policy.knowledge(er_graph), seed=1
        )
        e = policy.ell_max[0]
        assert all(-e <= s <= e for s in states)

    def test_random_corruption_replaces_everything(self, er_graph):
        network = make_network(er_graph)
        rng = np.random.default_rng(2)
        RandomCorruption().apply(network, rng)
        # Fresh states are all 1; after corruption most are not.
        assert sum(1 for s in network.states if s != 1) > 40

    def test_bernoulli_rho_zero_is_noop(self, er_graph):
        network = make_network(er_graph)
        before = network.states
        BernoulliCorruption(0.0).apply(network, np.random.default_rng(3))
        assert network.states == before

    def test_bernoulli_rho_validated(self):
        with pytest.raises(ValueError):
            BernoulliCorruption(1.5)

    def test_bernoulli_partial(self, er_graph):
        network = make_network(er_graph)
        BernoulliCorruption(0.3).apply(network, np.random.default_rng(4))
        changed = sum(1 for s in network.states if s != 1)
        # ~24 of 80 expected; allow generous slack but demand partiality.
        assert 5 < changed < 60

    def test_targeted(self, path4):
        network = make_network(path4)
        TargetedCorruption(vertices=(2,)).apply(network, np.random.default_rng(1))
        assert network.states[0] == 1 and network.states[1] == 1

    def test_adversarial_patterns(self, er_graph):
        network = make_network(er_graph)
        e = network.knowledge[0].ell_max
        AdversarialPattern.all_silent().apply(network, np.random.default_rng(0))
        assert all(s == e for s in network.states)
        AdversarialPattern.all_prominent().apply(network, np.random.default_rng(0))
        assert all(s == -e for s in network.states)
        AdversarialPattern.threshold().apply(network, np.random.default_rng(0))
        assert all(s == e - 1 for s in network.states)


class TestRecovery:
    @pytest.mark.parametrize(
        "fault",
        [
            RandomCorruption(),
            BernoulliCorruption(0.5),
            AdversarialPattern.all_silent(),
            AdversarialPattern.all_prominent(),
            AdversarialPattern.threshold(),
        ],
        ids=["random", "bernoulli", "all_silent", "all_prominent", "threshold"],
    )
    def test_recovers_from_any_corruption(self, er_graph, fault):
        """Self-stabilization: stabilize, corrupt, stabilize again."""
        network = make_network(er_graph, seed=5)
        stabilize(network)
        fault.apply(network, np.random.default_rng(6))
        result = stabilize(network)
        assert check_mis(er_graph, result.mis) is None

    def test_recovery_after_targeted_single_fault(self, er_graph):
        """Corrupting one vertex out of a legal configuration recovers,
        possibly to a different MIS."""
        network = make_network(er_graph, seed=7)
        stabilize(network)
        TargetedCorruption(vertices=(0,)).apply(network, np.random.default_rng(8))
        result = stabilize(network)
        assert check_mis(er_graph, result.mis) is None


class TestFaultSchedule:
    def test_events_sorted(self):
        schedule = FaultSchedule(
            events=((30, RandomCorruption()), (10, BernoulliCorruption(0.1)))
        )
        assert [when for when, _ in schedule.events] == [10, 30]
        assert schedule.last_fault_round == 30

    def test_empty_schedule(self):
        assert FaultSchedule(events=()).last_fault_round == -1

    def test_maybe_fire(self, path4):
        network = make_network(path4)
        schedule = FaultSchedule(events=((2, AdversarialPattern.all_silent()),))
        rng = np.random.default_rng(0)
        assert not schedule.maybe_fire(0, network, rng)
        assert schedule.maybe_fire(2, network, rng)
        assert all(s == network.knowledge[0].ell_max for s in network.states)

    def test_run_with_faults_measures_suffix(self, er_graph):
        network = make_network(er_graph, seed=9)
        schedule = FaultSchedule(
            events=(
                (5, BernoulliCorruption(0.3)),
                (15, RandomCorruption()),
            )
        )
        stabilized, recovery = schedule.run_with_faults(
            network, max_rounds=20_000, seed=10
        )
        assert stabilized
        assert recovery >= 0
        assert network.is_legal()
