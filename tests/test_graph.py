"""Unit tests for the core Graph type."""

import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []

    def test_isolated_vertices(self):
        g = Graph(5)
        assert g.num_vertices == 5
        assert all(g.degree(v) == 0 for v in g.vertices())
        assert g.max_degree() == 0

    def test_basic_edges(self, triangle):
        assert triangle.num_edges == 3
        assert triangle.degree(0) == 2
        assert triangle.neighbors(1) == (0, 2)

    def test_duplicate_edges_collapsed(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            Graph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(0, 2)])
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_edges_are_canonical_and_sorted(self):
        g = Graph(4, [(3, 0), (2, 1)])
        assert g.edges == ((0, 3), (1, 2))


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2) == (0, 1, 3, 4)

    def test_closed_neighborhood(self, path4):
        assert path4.closed_neighborhood(1) == (0, 1, 2)
        assert path4.closed_neighborhood(0) == (0, 1)

    def test_closed_neighborhood_isolated(self):
        g = Graph(2)
        assert g.closed_neighborhood(0) == (0,)

    def test_degrees_tuple(self, star6):
        assert star6.degrees() == (5, 1, 1, 1, 1, 1)
        assert star6.max_degree() == 5

    def test_has_edge(self, triangle, path4):
        assert triangle.has_edge(0, 2)
        assert triangle.has_edge(2, 0)
        assert not path4.has_edge(0, 2)
        assert not path4.has_edge(1, 1)

    def test_len_and_iter(self, path4):
        assert len(path4) == 4
        assert list(path4) == [0, 1, 2, 3]


class TestEqualityHash:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_by_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(1, 2)])

    def test_unequal_by_size(self):
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])

    def test_repr(self, triangle):
        assert repr(triangle) == "Graph(n=3, m=3)"


class TestDerived:
    def test_from_adjacency(self):
        g = Graph.from_adjacency({0: [1, 2], 1: [0], 2: [0], 4: []})
        assert g.num_vertices == 5
        assert g.num_edges == 2
        assert g.degree(3) == 0

    def test_from_adjacency_empty(self):
        assert Graph.from_adjacency({}).num_vertices == 0

    def test_subgraph_relabels(self, path4):
        sub = path4.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.edges == ((0, 1), (1, 2))

    def test_subgraph_drops_cross_edges(self, triangle):
        sub = triangle.subgraph([0, 2])
        assert sub.num_edges == 1

    def test_complement_of_triangle_is_empty(self, triangle):
        assert triangle.complement().num_edges == 0

    def test_complement_involution(self, path4):
        assert path4.complement().complement() == path4

    def test_union_disjoint(self, triangle, path4):
        g = triangle.union_disjoint(path4)
        assert g.num_vertices == 7
        assert g.num_edges == 6
        assert g.has_edge(3, 4)  # shifted path edge
        assert not g.has_edge(2, 3)  # no cross edges
