"""Unit tests for the reference round engine's semantics."""

import pytest

from repro.beeping.algorithm import BeepingAlgorithm, LocalKnowledge, NodeOutput
from repro.beeping.network import BeepingNetwork
from repro.graphs import generators as gen
from repro.graphs.graph import Graph


class AlwaysBeep(BeepingAlgorithm):
    """Deterministic probe: everyone beeps; state counts heard rounds."""

    num_channels = 1

    def fresh_state(self, knowledge):
        return 0

    def random_state(self, knowledge, rng):
        return int(rng.integers(100))

    def beeps(self, state, knowledge, u):
        return (True,)

    def step(self, state, sent, heard, knowledge, u=0.0):
        return state + (1 if heard[0] else 0)

    def output(self, state, knowledge):
        return NodeOutput.UNDECIDED


class EchoOnce(BeepingAlgorithm):
    """Only vertex-with-state-'source' beeps in round 0 (via state flag)."""

    num_channels = 1

    def fresh_state(self, knowledge):
        return {"source": False, "heard": False, "sent": False}

    def random_state(self, knowledge, rng):
        return self.fresh_state(knowledge)

    def beeps(self, state, knowledge, u):
        return (state["source"] and not state["sent"],)

    def step(self, state, sent, heard, knowledge, u=0.0):
        return {
            "source": state["source"],
            "heard": state["heard"] or heard[0],
            "sent": state["sent"] or sent[0],
        }

    def output(self, state, knowledge):
        return NodeOutput.UNDECIDED


def make_network(graph, algorithm, seed=0, **kwargs):
    knowledge = [LocalKnowledge() for _ in graph.vertices()]
    return BeepingNetwork(graph, algorithm, knowledge, seed=seed, **kwargs)


class TestFullDuplexSemantics:
    def test_neighbors_hear_beeps(self, star6):
        network = make_network(star6, EchoOnce())
        states = list(network.states)
        states[3]["source"] = True  # one leaf is the source
        network.set_states(states)
        network.step()
        heard = [s["heard"] for s in network.states]
        assert heard[0] is True  # hub hears
        assert heard[3] is False  # the beeper does NOT hear itself
        assert heard[1] is False  # other leaves are not neighbors

    def test_isolated_vertex_never_hears(self):
        g = Graph(2)  # two isolated vertices
        network = make_network(g, AlwaysBeep())
        network.run(5)
        assert network.states == (0, 0)

    def test_everyone_hears_in_clique(self):
        g = gen.complete(4)
        network = make_network(g, AlwaysBeep())
        network.run(3)
        assert network.states == (3, 3, 3, 3)

    def test_round_record_contents(self, star6):
        network = make_network(star6, AlwaysBeep())
        record = network.step()
        assert record.round_index == 0
        assert record.beep_count(0) == 6
        assert all(pattern == (True,) for pattern in record.sent)
        # Hub hears its 5 leaves; each leaf hears the hub.
        assert all(h == (True,) for h in record.heard)


class TestEngineContract:
    def test_knowledge_length_validated(self, path4):
        with pytest.raises(ValueError, match="knowledge"):
            BeepingNetwork(path4, AlwaysBeep(), [LocalKnowledge()] * 3)

    def test_initial_states_length_validated(self, path4):
        with pytest.raises(ValueError, match="initial_states"):
            make_network(path4, AlwaysBeep(), initial_states=[0, 0])

    def test_channel_width_validated(self, path4):
        class Wrong(AlwaysBeep):
            def beeps(self, state, knowledge, u):
                return (True, False)  # declares 1 channel, returns 2

        network = make_network(path4, Wrong())
        with pytest.raises(ValueError, match="channel"):
            network.step()

    def test_round_counter(self, path4):
        network = make_network(path4, AlwaysBeep())
        assert network.round_index == 0
        network.run(7)
        assert network.round_index == 7

    def test_set_state_targets_one_vertex(self, path4):
        network = make_network(path4, AlwaysBeep())
        network.set_state(2, 99)
        assert network.states[2] == 99
        assert network.states[0] == 0

    def test_same_seed_same_trajectory(self, er_graph):
        from repro.core import SelfStabilizingMIS, max_degree_policy

        policy = max_degree_policy(er_graph, c1=4)
        runs = []
        for _ in range(2):
            network = BeepingNetwork(
                er_graph,
                SelfStabilizingMIS(),
                policy.knowledge(er_graph),
                seed=11,
            )
            network.run(30)
            runs.append(network.states)
        assert runs[0] == runs[1]

    def test_legality_unsupported_raises(self, path4):
        network = make_network(path4, AlwaysBeep())
        with pytest.raises(NotImplementedError):
            network.is_legal()

    def test_randomize_states(self, path4):
        network = make_network(path4, AlwaysBeep(), seed=3)
        network.randomize_states()
        assert any(s != 0 for s in network.states)


class TestSynchrony:
    def test_updates_use_start_of_round_states(self):
        """A vertex's beep decision must not see a neighbor's same-round
        update: on a path 0-1, if only vertex 0 beeps in round 0, vertex
        1 must still base its own round-0 beep on its initial state."""

        class BeepIfStateOne(BeepingAlgorithm):
            num_channels = 1

            def fresh_state(self, knowledge):
                return 0

            def random_state(self, knowledge, rng):
                return 0

            def beeps(self, state, knowledge, u):
                return (state == 1,)

            def step(self, state, sent, heard, knowledge, u=0.0):
                return 1 if heard[0] else state

            def output(self, state, knowledge):
                return NodeOutput.UNDECIDED

        g = gen.path(3)
        network = make_network(g, BeepIfStateOne())
        network.set_states([1, 0, 0])
        network.step()
        # After round 0 vertex 1 heard and became 1, but it must not have
        # beeped in round 0 itself, so vertex 2 stays 0.
        assert network.states == (1, 1, 0)
        network.step()
        assert network.states == (1, 1, 1)
